//! The compiled epistemic query engine: hash-consed formulas, batched
//! evaluation sessions, and counterexample-carrying verdicts.
//!
//! The paper's results are answered by evaluating *families* of closely
//! related formulas over one interpreted system — the `C_N(t-faulty ∧ …)`
//! towers of `P1`, the per-value `someone_just_decided` /
//! `nobody_deciding` disjunctions of `P0`, the EBA spec validities. A
//! recursive per-formula [`eval`](InterpretedSystem::eval) recomputes every shared
//! subformula per root; this module compiles a *batch* instead:
//!
//! 1. [`FormulaArena`] **hash-conses** formulas into dense [`NodeId`]s:
//!    structurally equal subformulas are interned exactly once, so the
//!    shared towers exist once no matter how many roots mention them.
//! 2. [`QueryPlan`] schedules the nodes reachable from a set of roots in
//!    topological order (interning guarantees children precede parents),
//!    and records how many node evaluations the batch saves over
//!    evaluating each root independently.
//! 3. [`EvalSession`] executes the plan over an [`InterpretedSystem`] in
//!    one pass — one [`BitSet`] per distinct node, state-level
//!    propositions resolved through the interned
//!    [`RunStore`](eba_sim::store::RunStore)'s per-`StateId` tables,
//!    run-level propositions filled a whole run at a time — and answers
//!    every root with a [`Verdict`] carrying a `(run, time)`
//!    counterexample when the formula is not valid.
//!
//! [`eval`](InterpretedSystem::eval), [`InterpretedSystem::valid`] and friends are thin
//! wrappers that build a one-formula plan; the pre-engine recursion
//! survives as [`InterpretedSystem::eval_recursive`], the independent
//! oracle the engine is verified against bit-for-bit
//! (`tests/query_engine_equivalence.rs`).
//!
//! # Example: the EBA spec as one batch, with witnesses
//!
//! ```
//! use eba_core::prelude::*;
//! use eba_epistemic::prelude::*;
//! use eba_sim::prelude::*;
//!
//! # fn main() -> Result<(), EbaError> {
//! let params = Params::new(3, 1)?;
//! let sys = InterpretedSystem::from_context(
//!     Context::minimal(params), 4, 1_000_000, Parallelism::Auto)?;
//!
//! let mut arena = FormulaArena::new();
//! let roots: Vec<NodeId> = AgentId::all(3)
//!     .map(|i| {
//!         // Strong Validity for agent i: decided_i = 0 ⇒ ∃0.
//!         let decided = arena.decided_is(i, Some(Value::Zero));
//!         let exists = arena.exists_init(Value::Zero);
//!         arena.implies(decided, exists)
//!     })
//!     .collect();
//! let plan = QueryPlan::new(&arena, &roots);
//! let session = EvalSession::evaluate(&sys, &arena, &plan);
//! for root in &roots {
//!     let verdict = session.verdict(*root);
//!     assert!(verdict.holds, "violated at {:?}", verdict.counterexample);
//! }
//! // All three roots share the interned `∃0` leaf — the batch
//! // evaluates it once instead of once per root:
//! assert!(plan.evaluated_node_count() < plan.naive_node_count());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use eba_core::exchange::InformationExchange;
use eba_core::types::{subsets_of_size, AgentId, BitSet, Params, Value};

use crate::formula::Formula;
use crate::system::{InterpretedSystem, PointId};

/// Dense handle of an interned formula node in a [`FormulaArena`].
///
/// Ids are assigned in interning order, and every constructor interns
/// subformulas before the enclosing node, so **ids are a topological
/// order**: a node's children always have strictly smaller ids.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(u32);

impl NodeId {
    /// The dense index of the node (`0..arena.node_count()`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned formula node: the same operators as [`Formula`], with
/// subformulas replaced by [`NodeId`]s into the owning arena.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    /// Truth.
    True,
    /// `init_i = v`.
    InitIs(AgentId, Value),
    /// `decided_i = v` (`None` is `⊥`).
    DecidedIs(AgentId, Option<Value>),
    /// `time = k`.
    TimeIs(u32),
    /// `i ∈ N`.
    Nonfaulty(AgentId),
    /// `∃v ≡ ⋁_j init_j = v`.
    ExistsInit(Value),
    /// `jdecided_i = v`.
    JustDecided(AgentId, Value),
    /// `deciding_i = v`.
    Deciding(AgentId, Value),
    /// Negation.
    Not(NodeId),
    /// Conjunction (empty = true).
    And(Vec<NodeId>),
    /// Disjunction (empty = false).
    Or(Vec<NodeId>),
    /// `K_i φ`.
    Knows(AgentId, NodeId),
    /// `E_N φ`.
    EveryoneNonfaulty(NodeId),
    /// `C_N φ`.
    CommonNonfaulty(NodeId),
    /// `◯φ` (false at the horizon).
    Next(NodeId),
    /// `⊖φ` (false at time 0).
    Prev(NodeId),
    /// `□φ` within the horizon.
    Henceforth(NodeId),
    /// `♦φ` within the horizon.
    Eventually(NodeId),
}

impl Node {
    /// The ids of this node's direct subformulas.
    fn children(&self) -> &[NodeId] {
        match self {
            Node::True
            | Node::InitIs(..)
            | Node::DecidedIs(..)
            | Node::TimeIs(..)
            | Node::Nonfaulty(..)
            | Node::ExistsInit(..)
            | Node::JustDecided(..)
            | Node::Deciding(..) => &[],
            Node::Not(g)
            | Node::Knows(_, g)
            | Node::EveryoneNonfaulty(g)
            | Node::CommonNonfaulty(g)
            | Node::Next(g)
            | Node::Prev(g)
            | Node::Henceforth(g)
            | Node::Eventually(g) => std::slice::from_ref(g),
            Node::And(gs) | Node::Or(gs) => gs,
        }
    }
}

/// A hash-consing arena of formula nodes: structurally equal subformulas
/// are interned exactly once and shared by id.
///
/// Build queries either by [`intern`](FormulaArena::intern)ing an
/// existing [`Formula`] tree or directly through the combinator
/// constructors ([`and`](FormulaArena::and),
/// [`knows`](FormulaArena::knows),
/// [`someone_just_decided`](FormulaArena::someone_just_decided), …),
/// which never materialize an intermediate `Formula` allocation.
#[derive(Clone, Debug)]
pub struct FormulaArena {
    nodes: Vec<Node>,
    index: HashMap<Node, NodeId>,
    /// Identity stamp, unique per `new()` (clones share it — a clone's
    /// id space is a compatible extension of the original's). A
    /// [`QueryPlan`] records the stamp so an [`EvalSession`] can reject
    /// a plan paired with an unrelated arena instead of resolving its
    /// node ids against the wrong node table.
    stamp: u64,
}

impl Default for FormulaArena {
    fn default() -> Self {
        FormulaArena::new()
    }
}

impl FormulaArena {
    /// An empty arena with a fresh identity stamp.
    #[must_use]
    pub fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_STAMP: AtomicU64 = AtomicU64::new(0);
        FormulaArena {
            nodes: Vec::new(),
            index: HashMap::new(),
            stamp: NEXT_STAMP.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Number of distinct interned nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this arena.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Interns a node, returning the existing id when a structurally
    /// equal node is already present.
    fn add(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.index.get(&node) {
            return *id;
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("arena holds < 2^32 nodes"));
        self.nodes.push(node.clone());
        self.index.insert(node, id);
        id
    }

    /// Interns a [`Formula`] tree bottom-up, deduplicating every shared
    /// subformula against everything already in the arena.
    pub fn intern(&mut self, f: &Formula) -> NodeId {
        let node = match f {
            Formula::True => Node::True,
            Formula::InitIs(i, v) => Node::InitIs(*i, *v),
            Formula::DecidedIs(i, v) => Node::DecidedIs(*i, *v),
            Formula::TimeIs(k) => Node::TimeIs(*k),
            Formula::Nonfaulty(i) => Node::Nonfaulty(*i),
            Formula::ExistsInit(v) => Node::ExistsInit(*v),
            Formula::JustDecided(i, v) => Node::JustDecided(*i, *v),
            Formula::Deciding(i, v) => Node::Deciding(*i, *v),
            Formula::Not(g) => Node::Not(self.intern(g)),
            Formula::And(gs) => Node::And(gs.iter().map(|g| self.intern(g)).collect()),
            Formula::Or(gs) => Node::Or(gs.iter().map(|g| self.intern(g)).collect()),
            Formula::Knows(i, g) => Node::Knows(*i, self.intern(g)),
            Formula::EveryoneNonfaulty(g) => Node::EveryoneNonfaulty(self.intern(g)),
            Formula::CommonNonfaulty(g) => Node::CommonNonfaulty(self.intern(g)),
            Formula::Next(g) => Node::Next(self.intern(g)),
            Formula::Prev(g) => Node::Prev(self.intern(g)),
            Formula::Henceforth(g) => Node::Henceforth(self.intern(g)),
            Formula::Eventually(g) => Node::Eventually(self.intern(g)),
        };
        self.add(node)
    }

    /// Truth.
    pub fn tt(&mut self) -> NodeId {
        self.add(Node::True)
    }

    /// `init_i = v`.
    pub fn init_is(&mut self, agent: AgentId, v: Value) -> NodeId {
        self.add(Node::InitIs(agent, v))
    }

    /// `decided_i = v` (`None` is `⊥`).
    pub fn decided_is(&mut self, agent: AgentId, v: Option<Value>) -> NodeId {
        self.add(Node::DecidedIs(agent, v))
    }

    /// `time = k`.
    pub fn time_is(&mut self, k: u32) -> NodeId {
        self.add(Node::TimeIs(k))
    }

    /// `i ∈ N`.
    pub fn nonfaulty(&mut self, agent: AgentId) -> NodeId {
        self.add(Node::Nonfaulty(agent))
    }

    /// `∃v`.
    pub fn exists_init(&mut self, v: Value) -> NodeId {
        self.add(Node::ExistsInit(v))
    }

    /// `jdecided_i = v`.
    pub fn just_decided(&mut self, agent: AgentId, v: Value) -> NodeId {
        self.add(Node::JustDecided(agent, v))
    }

    /// `deciding_i = v`.
    pub fn deciding(&mut self, agent: AgentId, v: Value) -> NodeId {
        self.add(Node::Deciding(agent, v))
    }

    /// `¬φ`.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        self.add(Node::Not(f))
    }

    /// `⋀ fs` (empty = true).
    pub fn and(&mut self, fs: Vec<NodeId>) -> NodeId {
        self.add(Node::And(fs))
    }

    /// `⋁ fs` (empty = false).
    pub fn or(&mut self, fs: Vec<NodeId>) -> NodeId {
        self.add(Node::Or(fs))
    }

    /// `φ ⇒ ψ`, interned with the same `Or(¬φ, ψ)` shape as
    /// [`Formula::implies`].
    pub fn implies(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let nf = self.not(f);
        self.or(vec![nf, g])
    }

    /// `K_i φ`.
    pub fn knows(&mut self, agent: AgentId, f: NodeId) -> NodeId {
        self.add(Node::Knows(agent, f))
    }

    /// `E_N φ`.
    pub fn everyone_nonfaulty(&mut self, f: NodeId) -> NodeId {
        self.add(Node::EveryoneNonfaulty(f))
    }

    /// `C_N φ`.
    pub fn common_nonfaulty(&mut self, f: NodeId) -> NodeId {
        self.add(Node::CommonNonfaulty(f))
    }

    /// `◯φ`.
    pub fn next(&mut self, f: NodeId) -> NodeId {
        self.add(Node::Next(f))
    }

    /// `⊖φ`.
    pub fn prev(&mut self, f: NodeId) -> NodeId {
        self.add(Node::Prev(f))
    }

    /// `□φ`.
    pub fn henceforth(&mut self, f: NodeId) -> NodeId {
        self.add(Node::Henceforth(f))
    }

    /// `♦φ`.
    pub fn eventually(&mut self, f: NodeId) -> NodeId {
        self.add(Node::Eventually(f))
    }

    /// `⋁_{j ∈ Agt} jdecided_j = v` — the interned counterpart of
    /// [`Formula::someone_just_decided`]: the `O(n)` disjunction exists
    /// once per arena instead of once per call site.
    pub fn someone_just_decided(&mut self, n: usize, v: Value) -> NodeId {
        let js: Vec<NodeId> = AgentId::all(n).map(|j| self.just_decided(j, v)).collect();
        self.or(js)
    }

    /// `⋀_{j ∈ Agt} ¬(deciding_j = v)` — interned
    /// [`Formula::nobody_deciding`].
    pub fn nobody_deciding(&mut self, n: usize, v: Value) -> NodeId {
        let js: Vec<NodeId> = AgentId::all(n)
            .map(|j| {
                let d = self.deciding(j, v);
                self.not(d)
            })
            .collect();
        self.and(js)
    }

    /// `⋀_j (j ∈ N ⇒ ¬(decided_j = v))` — interned
    /// [`Formula::no_nonfaulty_decided`].
    pub fn no_nonfaulty_decided(&mut self, n: usize, v: Value) -> NodeId {
        let js: Vec<NodeId> = AgentId::all(n)
            .map(|j| {
                let nf = self.nonfaulty(j);
                let d = self.decided_is(j, Some(v));
                let nd = self.not(d);
                self.implies(nf, nd)
            })
            .collect();
        self.and(js)
    }

    /// The paper's `C_N(t-faulty ∧ φ)` abbreviation, interned — the
    /// engine counterpart of [`crate::kbp::ck_t_faulty_and`]. The
    /// `¬(i ∈ N)` leaves are shared across all `C(n, t)` faulty-set
    /// candidates (and with any other query in the arena).
    pub fn ck_t_faulty_and(&mut self, params: Params, phi: NodeId) -> NodeId {
        let disjuncts: Vec<NodeId> = subsets_of_size(params.n(), params.t())
            .into_iter()
            .map(|a| {
                let mut conj: Vec<NodeId> = a
                    .iter()
                    .map(|i| {
                        let nf = self.nonfaulty(i);
                        self.not(nf)
                    })
                    .collect();
                conj.push(phi);
                let body = self.and(conj);
                self.common_nonfaulty(body)
            })
            .collect();
        self.or(disjuncts)
    }

    /// Number of **distinct** nodes reachable from `root` — the node
    /// count of `root` evaluated as a one-root plan. Note this is a
    /// lower bound on what the legacy tree recursion
    /// ([`InterpretedSystem::eval_recursive`]) traverses: the recursion
    /// re-evaluates each *occurrence* of a repeated subformula, while
    /// this counts it once.
    #[must_use]
    pub fn reachable_count(&self, root: NodeId) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.index()], true) {
                continue;
            }
            count += 1;
            stack.extend_from_slice(self.node(id).children());
        }
        count
    }
}

/// A topologically scheduled batch of root formulas over a shared
/// [`FormulaArena`] DAG.
///
/// The schedule contains each node reachable from any root **once**, in
/// ascending id order (a valid evaluation order by construction);
/// [`naive_node_count`](QueryPlan::naive_node_count) records what the
/// same roots would cost as independent per-formula evaluations.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    roots: Vec<NodeId>,
    schedule: Vec<NodeId>,
    /// `slot_of[node.index()]` = position in `schedule`, or `u32::MAX`
    /// when the node is not reachable from any root.
    slot_of: Vec<u32>,
    naive_nodes: usize,
    /// Stamp of the arena the plan was built from (see
    /// [`FormulaArena::new`]).
    arena_stamp: u64,
}

impl QueryPlan {
    /// Plans the batch evaluation of `roots` over `arena`.
    #[must_use]
    pub fn new(arena: &FormulaArena, roots: &[NodeId]) -> QueryPlan {
        let mut reachable = vec![false; arena.node_count()];
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut reachable[id.index()], true) {
                continue;
            }
            stack.extend_from_slice(arena.node(id).children());
        }
        let mut schedule = Vec::new();
        let mut slot_of = vec![u32::MAX; arena.node_count()];
        for (idx, is_in) in reachable.iter().enumerate() {
            if *is_in {
                slot_of[idx] = schedule.len() as u32;
                schedule.push(NodeId(idx as u32));
            }
        }
        let naive_nodes = roots.iter().map(|r| arena.reachable_count(*r)).sum();
        QueryPlan {
            roots: roots.to_vec(),
            schedule,
            slot_of,
            naive_nodes,
            arena_stamp: arena.stamp,
        }
    }

    /// The root formulas of the batch, in the order given to
    /// [`QueryPlan::new`].
    #[must_use]
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Distinct nodes the session will evaluate — the size of the shared
    /// DAG under the roots.
    #[must_use]
    pub fn evaluated_node_count(&self) -> usize {
        self.schedule.len()
    }

    /// What the same roots cost as independent one-root plans: the sum
    /// over roots of each root's **distinct** reachable-node count
    /// ([`FormulaArena::reachable_count`]).
    /// `naive_node_count() - evaluated_node_count()` is what batching
    /// saves *across* roots; it understates the saving against the
    /// legacy tree recursion, which additionally re-evaluates repeated
    /// subformula occurrences *within* a single formula.
    #[must_use]
    pub fn naive_node_count(&self) -> usize {
        self.naive_nodes
    }
}

/// The answer to one root query: whether the formula is **valid** (holds
/// at every point of the system), and a witnessing point when it is not.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Verdict {
    /// Whether the formula holds at every point.
    pub holds: bool,
    /// When `!holds`: the first `(run, time)` point falsifying the
    /// formula — re-checkable with
    /// [`InterpretedSystem::satisfied_at`].
    pub counterexample: Option<(usize, u32)>,
}

/// One executed batch: every scheduled node's point set, computed in a
/// single topological pass over an [`InterpretedSystem`].
///
/// Run-level propositions (`InitIs`, `Nonfaulty`, `ExistsInit`) fill
/// whole runs at a time; `decided`-reading propositions resolve through
/// the system's per-distinct-state tables (one lookup per point by
/// [`StateId`](eba_sim::store::StateId)); knowledge operators reuse the
/// system's indistinguishability classes. Each distinct node is
/// evaluated exactly once no matter how many roots (or enclosing
/// formulas) share it.
pub struct EvalSession<'s, E: InformationExchange> {
    sys: &'s InterpretedSystem<E>,
    slot_of: Vec<u32>,
    bits: Vec<BitSet>,
}

impl<'s, E: InformationExchange> EvalSession<'s, E> {
    /// Evaluates every node of `plan` over `sys`, children before
    /// parents, in one pass.
    ///
    /// # Panics
    ///
    /// Panics if `plan` was built from a different arena than `arena`
    /// (identity is checked via the arena's stamp — clones share their
    /// original's stamp and id space, so evaluating against a clone, or
    /// against the same arena after further interning, is fine), or if
    /// the supplied arena is smaller than the plan's id space.
    pub fn evaluate(
        sys: &'s InterpretedSystem<E>,
        arena: &FormulaArena,
        plan: &QueryPlan,
    ) -> EvalSession<'s, E> {
        assert!(
            plan.arena_stamp == arena.stamp,
            "plan was built from a different arena (stamp {} vs {}): its node ids \
             would resolve against an unrelated node table",
            plan.arena_stamp,
            arena.stamp
        );
        assert!(
            plan.slot_of.len() <= arena.node_count(),
            "plan was built for a larger arena ({} nodes) than the one supplied ({})",
            plan.slot_of.len(),
            arena.node_count()
        );
        let count = sys.point_count();
        let mut bits: Vec<BitSet> = Vec::with_capacity(plan.schedule.len());
        let child = |bits: &[BitSet], slot_of: &[u32], id: NodeId| -> BitSet {
            bits[slot_of[id.index()] as usize].clone()
        };
        for id in &plan.schedule {
            let get = |cid: &NodeId| &bits[plan.slot_of[cid.index()] as usize];
            let set = match arena.node(*id) {
                Node::True => {
                    let mut s = BitSet::new(count);
                    s.fill();
                    s
                }
                Node::InitIs(i, v) => sys.points_where_run(|r| sys.inits(r)[i.index()] == *v),
                Node::DecidedIs(i, v) => {
                    let decided = sys.decided_table();
                    sys.points_by(|pid| decided[sys.state_id(pid, *i).index()] == *v)
                }
                Node::TimeIs(k) => sys.points_by(|pid| sys.time_of(pid) == *k),
                Node::Nonfaulty(i) => sys.points_where_run(|r| sys.nonfaulty(r).contains(*i)),
                Node::ExistsInit(v) => sys.points_where_run(|r| sys.inits(r).contains(v)),
                Node::JustDecided(i, v) => {
                    let decided = sys.decided_table();
                    sys.points_by(|pid| {
                        let m = sys.time_of(pid);
                        m > 0
                            && decided[sys.state_id(pid, *i).index()] == Some(*v)
                            && decided[sys.state_id(pid - 1, *i).index()].is_none()
                    })
                }
                Node::Deciding(i, v) => {
                    let decided = sys.decided_table();
                    sys.points_by(|pid| {
                        let m = sys.time_of(pid);
                        m < sys.horizon()
                            && decided[sys.state_id(pid, *i).index()].is_none()
                            && decided[sys.state_id(pid + 1, *i).index()] == Some(*v)
                    })
                }
                Node::Not(g) => {
                    let mut s = child(&bits, &plan.slot_of, *g);
                    s.invert();
                    s
                }
                Node::And(gs) => {
                    let mut s = BitSet::new(count);
                    s.fill();
                    for g in gs {
                        s.intersect_with(get(g));
                    }
                    s
                }
                Node::Or(gs) => {
                    let mut s = BitSet::new(count);
                    for g in gs {
                        s.union_with(get(g));
                    }
                    s
                }
                Node::Knows(i, g) => sys.knows_set(*i, get(g)),
                Node::EveryoneNonfaulty(g) => sys.everyone_nonfaulty_set(get(g)),
                Node::CommonNonfaulty(g) => sys.common_nonfaulty_set(get(g)),
                Node::Next(g) => {
                    let inner = get(g);
                    sys.points_by(|pid| {
                        sys.time_of(pid) < sys.horizon() && inner.contains(pid as usize + 1)
                    })
                }
                Node::Prev(g) => {
                    let inner = get(g);
                    sys.points_by(|pid| sys.time_of(pid) > 0 && inner.contains(pid as usize - 1))
                }
                Node::Henceforth(g) => {
                    let inner = get(g);
                    sys.points_by(|pid| {
                        let run = sys.run_of(pid);
                        (sys.time_of(pid)..=sys.horizon())
                            .all(|m| inner.contains(sys.point(run, m) as usize))
                    })
                }
                Node::Eventually(g) => {
                    let inner = get(g);
                    sys.points_by(|pid| {
                        let run = sys.run_of(pid);
                        (sys.time_of(pid)..=sys.horizon())
                            .any(|m| inner.contains(sys.point(run, m) as usize))
                    })
                }
            };
            bits.push(set);
        }
        EvalSession {
            sys,
            slot_of: plan.slot_of.clone(),
            bits,
        }
    }

    /// Number of distinct nodes this session evaluated.
    #[must_use]
    pub fn nodes_evaluated(&self) -> usize {
        self.bits.len()
    }

    /// The set of points satisfying an evaluated node.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not part of the session's plan.
    #[must_use]
    pub fn bitset(&self, id: NodeId) -> &BitSet {
        let slot = self.slot_of[id.index()];
        assert!(slot != u32::MAX, "node {id:?} is not in the plan");
        &self.bits[slot as usize]
    }

    /// Consumes the session, returning the owned point set of one node.
    #[must_use]
    pub fn into_bitset(mut self, id: NodeId) -> BitSet {
        let slot = self.slot_of[id.index()];
        assert!(slot != u32::MAX, "node {id:?} is not in the plan");
        std::mem::replace(&mut self.bits[slot as usize], BitSet::new(0))
    }

    /// Whether the node holds at `(run, time)`.
    #[must_use]
    pub fn holds_at(&self, id: NodeId, run: usize, time: u32) -> bool {
        self.bitset(id).contains(self.sys.point(run, time) as usize)
    }

    /// The validity verdict for a node, with the first falsifying
    /// `(run, time)` point as counterexample when it is not valid.
    #[must_use]
    pub fn verdict(&self, id: NodeId) -> Verdict {
        match self.bitset(id).first_unset() {
            None => Verdict {
                holds: true,
                counterexample: None,
            },
            Some(p) => {
                let pid = p as PointId;
                Verdict {
                    holds: false,
                    counterexample: Some((self.sys.run_of(pid), self.sys.time_of(pid))),
                }
            }
        }
    }
}

impl<E: InformationExchange> InterpretedSystem<E> {
    /// Answers one formula with a counterexample-carrying [`Verdict`]
    /// through a one-formula [`QueryPlan`]. For families of related
    /// formulas, prefer [`InterpretedSystem::query_batch`] (shared
    /// subformulas are then evaluated once).
    pub fn query(&self, f: &Formula) -> Verdict {
        self.query_batch(std::slice::from_ref(f))
            .pop()
            .expect("one root, one verdict")
    }

    /// Answers a batch of formulas in one compiled pass: all roots are
    /// interned into one [`FormulaArena`], scheduled by one
    /// [`QueryPlan`], and evaluated by one [`EvalSession`], so every
    /// structurally shared subformula is computed exactly once. Verdicts
    /// are returned in input order.
    pub fn query_batch(&self, formulas: &[Formula]) -> Vec<Verdict> {
        let mut arena = FormulaArena::new();
        let roots: Vec<NodeId> = formulas.iter().map(|f| arena.intern(f)).collect();
        let plan = QueryPlan::new(&arena, &roots);
        let session = EvalSession::evaluate(self, &arena, &plan);
        roots.iter().map(|r| session.verdict(*r)).collect()
    }
}

/// The standard regression battery: every proposition kind, the
/// knowledge operators, and the temporal operators — 33 formulas at
/// `n = 3`. Shared by the equivalence suites, the benches, and the
/// `--bench-json` battery timings, so "the 33-formula battery" means the
/// same thing everywhere.
#[must_use]
pub fn standard_battery(n: usize) -> Vec<Formula> {
    let a = AgentId::new;
    let mut fs = vec![
        Formula::True,
        Formula::ExistsInit(Value::One),
        Formula::TimeIs(1),
        Formula::EveryoneNonfaulty(Box::new(Formula::ExistsInit(Value::One))),
        Formula::common_nonfaulty(Formula::ExistsInit(Value::Zero)),
        Formula::Next(Box::new(Formula::DecidedIs(a(0), Some(Value::One)))),
        Formula::Prev(Box::new(Formula::DecidedIs(a(0), None))),
        Formula::Henceforth(Box::new(Formula::DecidedIs(a(0), Some(Value::Zero)))),
        Formula::Eventually(Box::new(Formula::not(Formula::DecidedIs(a(0), None)))),
        Formula::someone_just_decided(n, Value::Zero),
        Formula::nobody_deciding(n, Value::Zero),
        Formula::no_nonfaulty_decided(n, Value::One),
    ];
    for i in 0..n {
        fs.push(Formula::InitIs(a(i), Value::Zero));
        fs.push(Formula::DecidedIs(a(i), Some(Value::One)));
        fs.push(Formula::DecidedIs(a(i), None));
        fs.push(Formula::Nonfaulty(a(i)));
        fs.push(Formula::JustDecided(a(i), Value::One));
        fs.push(Formula::Deciding(a(i), Value::Zero));
        fs.push(Formula::knows(a(i), Formula::ExistsInit(Value::Zero)));
    }
    fs
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_core::prelude::*;

    fn sys() -> InterpretedSystem<MinExchange> {
        let params = Params::new(3, 1).unwrap();
        let ex = MinExchange::new(params);
        let proto = PMin::new(params);
        InterpretedSystem::build(ex, &proto, 4, 1_000_000).unwrap()
    }

    #[test]
    fn interning_dedups_structural_equality() {
        let mut arena = FormulaArena::new();
        let a = arena.exists_init(Value::Zero);
        let b = arena.exists_init(Value::Zero);
        assert_eq!(a, b);
        let f = Formula::implies(
            Formula::ExistsInit(Value::Zero),
            Formula::ExistsInit(Value::Zero),
        );
        let root = arena.intern(&f);
        // ∃0 already interned; only ¬∃0 and the Or are new.
        assert_eq!(arena.node_count(), 3);
        assert_eq!(arena.reachable_count(root), 3);
    }

    #[test]
    fn node_ids_are_topological() {
        let mut arena = FormulaArena::new();
        let f = Formula::knows(
            AgentId::new(1),
            Formula::And(vec![
                Formula::ExistsInit(Value::One),
                Formula::not(Formula::Nonfaulty(AgentId::new(0))),
            ]),
        );
        let root = arena.intern(&f);
        for (idx, node) in (0..arena.node_count()).map(|i| (i, arena.node(NodeId(i as u32)))) {
            for c in node.children() {
                assert!(c.index() < idx, "child {c:?} not before parent {idx}");
            }
        }
        assert_eq!(root.index(), arena.node_count() - 1);
    }

    #[test]
    fn plan_schedules_only_reachable_nodes() {
        let mut arena = FormulaArena::new();
        let used = arena.exists_init(Value::One);
        let _unused = arena.exists_init(Value::Zero);
        let root = arena.not(used);
        let plan = QueryPlan::new(&arena, &[root]);
        assert_eq!(plan.evaluated_node_count(), 2);
        assert_eq!(plan.naive_node_count(), 2);
        assert_eq!(plan.roots(), &[root]);
    }

    #[test]
    fn batched_verdicts_match_recursive_eval() {
        let s = sys();
        for f in standard_battery(3) {
            let verdict = s.query(&f);
            let oracle = s.eval_recursive(&f);
            assert_eq!(verdict.holds, oracle.count() == s.point_count(), "{f:?}");
            match verdict.counterexample {
                None => assert!(verdict.holds),
                Some((run, time)) => {
                    assert!(!s.satisfied_at(&f, run, time), "{f:?}");
                }
            }
        }
    }

    #[test]
    fn batch_shares_subformulas_across_roots() {
        let phi = Formula::ExistsInit(Value::Zero);
        let roots = [
            Formula::knows(AgentId::new(0), phi.clone()),
            Formula::knows(AgentId::new(1), phi.clone()),
            Formula::common_nonfaulty(phi),
        ];
        let mut arena = FormulaArena::new();
        let ids: Vec<NodeId> = roots.iter().map(|f| arena.intern(f)).collect();
        let plan = QueryPlan::new(&arena, &ids);
        // φ is shared: 1 leaf + 3 operators = 4 distinct nodes, versus
        // 2 + 2 + 2 naively.
        assert_eq!(plan.evaluated_node_count(), 4);
        assert_eq!(plan.naive_node_count(), 6);
    }

    #[test]
    fn verdict_counterexample_is_first_falsifying_point() {
        let s = sys();
        // init_0 = 0 fails exactly on the runs where a0 prefers 1; the
        // engine must report the earliest such point.
        let f = Formula::InitIs(AgentId::new(0), Value::Zero);
        let verdict = s.query(&f);
        assert!(!verdict.holds);
        let (run, time) = verdict.counterexample.unwrap();
        assert!(!s.satisfied_at(&f, run, time));
        let set = s.eval_recursive(&f);
        let first = (0..s.point_count()).find(|p| !set.contains(*p)).unwrap();
        assert_eq!(s.point(run, time) as usize, first);
    }

    #[test]
    fn arena_combinators_match_interned_formula_helpers() {
        // The interning constructors must produce the exact node
        // structure `intern(&Formula::helper(..))` would.
        let params = Params::new(4, 2).unwrap();
        let mut via_formula = FormulaArena::new();
        let mut direct = FormulaArena::new();
        for v in Value::ALL {
            assert_eq!(
                via_formula.intern(&Formula::someone_just_decided(4, v)),
                direct.someone_just_decided(4, v)
            );
            assert_eq!(
                via_formula.intern(&Formula::nobody_deciding(4, v)),
                direct.nobody_deciding(4, v)
            );
            assert_eq!(
                via_formula.intern(&Formula::no_nonfaulty_decided(4, v)),
                direct.no_nonfaulty_decided(4, v)
            );
            let phi = crate::kbp::ck_t_faulty_and(params, Formula::ExistsInit(v));
            let phi_id = direct.exists_init(v);
            assert_eq!(
                via_formula.intern(&phi),
                direct.ck_t_faulty_and(params, phi_id)
            );
        }
        assert_eq!(via_formula.node_count(), direct.node_count());
    }

    #[test]
    #[should_panic(expected = "different arena")]
    fn sessions_reject_plans_from_unrelated_arenas() {
        let s = sys();
        let mut a = FormulaArena::new();
        let root = a.exists_init(Value::One);
        let plan = QueryPlan::new(&a, &[root]);
        // Same node count, entirely different arena: must panic, not
        // silently resolve the plan's ids against the wrong table.
        let mut b = FormulaArena::new();
        let _ = b.exists_init(Value::Zero);
        let _ = EvalSession::evaluate(&s, &b, &plan);
    }

    #[test]
    fn standard_battery_has_33_formulas_at_n3_and_dedups() {
        let battery = standard_battery(3);
        assert_eq!(battery.len(), 33);
        let mut arena = FormulaArena::new();
        let roots: Vec<NodeId> = battery.iter().map(|f| arena.intern(f)).collect();
        let plan = QueryPlan::new(&arena, &roots);
        assert!(
            plan.evaluated_node_count() < plan.naive_node_count(),
            "dedup must fire: {} vs {}",
            plan.evaluated_node_count(),
            plan.naive_node_count()
        );
    }
}
