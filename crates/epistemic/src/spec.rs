//! The EBA correctness spec as named formulas, checked through the
//! compiled query engine.
//!
//! This is the formula-level counterpart of `eba-sim`'s trace predicate
//! `check_eba`: Agreement posed as one clause per ordered nonfaulty pair,
//! strong Validity per agent and value, and bounded Termination per agent
//! — all interned into a single [`FormulaArena`] batch so one
//! [`EvalSession`] answers the whole spec with witnessing `(run, time)`
//! counterexamples. Every engine-produced witness is re-checked through
//! the independent recursive evaluator ([`InterpretedSystem::satisfied_at`],
//! which routes through `eval_recursive`), so downstream consumers (the
//! `--explain` reports, the adversary fuzzer's [`EngineOracle`]) get
//! oracle-confirmed verdicts for free.

use eba_core::context::Context;
use eba_core::exchange::InformationExchange;
use eba_core::protocols::ActionProtocol;
use eba_core::types::{Action, AgentId, EbaError, Value};
use eba_sim::enumerate::EnumRun;
use eba_sim::fuzz::{CaseOracle, CaseOutcome, FuzzCase, Violation};
use eba_sim::scenario::Scenario;

use crate::formula::Formula;
use crate::query::{EvalSession, FormulaArena, NodeId, QueryPlan};
use crate::system::InterpretedSystem;

/// Where a spec root is judged: as a validity over every point, or only
/// at the time-0 point of every run (bounded Termination is a claim about
/// whole runs, not about suffixes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckAt {
    /// The formula must hold at every point of the system.
    EveryPoint,
    /// The formula must hold at `(run, 0)` for every run.
    TimeZero,
}

/// One named EBA spec clause.
#[derive(Clone, Debug)]
pub struct SpecProperty {
    /// Human-readable name, e.g. `"Agreement(a0 = 0, a1 = 1)"`.
    pub name: String,
    /// The violated-clause kind as a stable lowercase identifier
    /// (`agreement`, `validity`, `termination`), matching
    /// [`eba_sim::fuzz::Violation::kind`].
    pub kind: &'static str,
    /// The formula itself.
    pub formula: Formula,
    /// Where the formula is judged.
    pub check_at: CheckAt,
}

/// The EBA spec for `n` agents: Agreement over ordered pairs, strong
/// Validity per agent and value, bounded Termination per agent.
pub fn eba_spec_properties(n: usize) -> Vec<SpecProperty> {
    let mut props = Vec::new();
    for i in AgentId::all(n) {
        for j in AgentId::all(n) {
            if i == j {
                continue;
            }
            props.push(SpecProperty {
                name: format!("Agreement({i} = 0, {j} = 1)"),
                kind: "agreement",
                formula: Formula::not(Formula::And(vec![
                    Formula::Nonfaulty(i),
                    Formula::Nonfaulty(j),
                    Formula::DecidedIs(i, Some(Value::Zero)),
                    Formula::DecidedIs(j, Some(Value::One)),
                ])),
                check_at: CheckAt::EveryPoint,
            });
        }
        for v in Value::ALL {
            props.push(SpecProperty {
                name: format!("StrongValidity({i}, {v})"),
                kind: "validity",
                formula: Formula::implies(Formula::DecidedIs(i, Some(v)), Formula::ExistsInit(v)),
                check_at: CheckAt::EveryPoint,
            });
        }
        props.push(SpecProperty {
            name: format!("Termination({i})"),
            kind: "termination",
            formula: Formula::implies(
                Formula::Nonfaulty(i),
                Formula::Eventually(Box::new(Formula::not(Formula::DecidedIs(i, None)))),
            ),
            check_at: CheckAt::TimeZero,
        });
    }
    props
}

/// One failing spec clause with its engine witness and the independent
/// oracle's confirmation of that witness.
#[derive(Clone, Debug)]
pub struct SpecVerdict {
    /// Name of the violated property.
    pub property: String,
    /// The violated-clause kind (`agreement`, `validity`, `termination`).
    pub kind: &'static str,
    /// The witnessing run index.
    pub run: usize,
    /// The witnessing time.
    pub time: u32,
    /// Whether `satisfied_at` (the `eval_recursive` path) confirmed the
    /// witness; `false` means an engine bug and is flagged by callers.
    pub oracle_confirmed: bool,
}

/// Poses the whole EBA spec as one compiled batch over `sys` and returns
/// every failing clause with an oracle-confirmed witness.
pub fn check_spec<E: InformationExchange>(sys: &InterpretedSystem<E>) -> Vec<SpecVerdict> {
    let props = eba_spec_properties(sys.params().n());
    let mut arena = FormulaArena::new();
    let roots: Vec<NodeId> = props.iter().map(|p| arena.intern(&p.formula)).collect();
    let plan = QueryPlan::new(&arena, &roots);
    let session = EvalSession::evaluate(sys, &arena, &plan);

    let mut verdicts = Vec::new();
    for (prop, root) in props.iter().zip(&roots) {
        let witness = match prop.check_at {
            CheckAt::EveryPoint => session.verdict(*root).counterexample,
            CheckAt::TimeZero => (0..sys.run_count())
                .find(|r| !session.holds_at(*root, *r, 0))
                .map(|r| (r, 0)),
        };
        let Some((run, time)) = witness else {
            continue;
        };
        let oracle_confirmed = !sys.satisfied_at(&prop.formula, run, time);
        debug_assert!(
            oracle_confirmed,
            "{}: engine witness (run {run}, time {time}) not confirmed by the oracle",
            prop.name
        );
        verdicts.push(SpecVerdict {
            property: prop.name.clone(),
            kind: prop.kind,
            run,
            time,
            oracle_confirmed,
        });
    }
    verdicts
}

/// A [`CaseOracle`] backed by the compiled query engine: each fuzz case
/// is simulated once to obtain its trajectory, wrapped into a one-run
/// interpreted system, and judged against the formula spec — an
/// independent checker from the trace predicate the simulator-backed
/// [`TraceOracle`](eba_sim::fuzz::TraceOracle) uses, with every witness
/// confirmed by `eval_recursive`.
pub struct EngineOracle<E, P> {
    ctx: Context<E, P>,
}

impl<E, P> EngineOracle<E, P>
where
    E: InformationExchange + Clone,
    P: ActionProtocol<E>,
{
    /// Wraps a context; cases run with the pattern's own model.
    pub fn new(ctx: Context<E, P>) -> Self {
        EngineOracle { ctx }
    }

    /// Builds the one-run interpreted system of a case.
    ///
    /// # Errors
    ///
    /// Propagates simulator and system-construction failures.
    pub fn system(&self, case: &FuzzCase) -> Result<InterpretedSystem<E>, EbaError> {
        let trace = Scenario::of(&self.ctx)
            .model(case.pattern.model())
            .pattern(case.pattern.clone())
            .inits(&case.inits)
            .horizon(case.horizon)
            .run()?;
        let run = EnumRun {
            nonfaulty: case.pattern.nonfaulty(),
            inits: trace.inits.clone(),
            states: trace.states,
            actions: trace.actions,
        };
        InterpretedSystem::from_runs(self.ctx.exchange().clone(), vec![run], case.horizon)
    }

    /// Re-checks a case's first violation directly through the
    /// independent recursive evaluator (no engine involved): returns the
    /// confirmed violation, or `None` if the spec holds recursively.
    ///
    /// # Errors
    ///
    /// Propagates simulator and system-construction failures.
    pub fn confirm_recursively(&self, case: &FuzzCase) -> Result<Option<Violation>, EbaError> {
        let sys = self.system(case)?;
        for prop in eba_spec_properties(sys.params().n()) {
            let holds = match prop.check_at {
                CheckAt::EveryPoint => {
                    let sat = sys.eval_recursive(&prop.formula);
                    (0..sys.point_count()).all(|p| sat.contains(p))
                }
                CheckAt::TimeZero => sys.satisfied_at(&prop.formula, 0, 0),
            };
            if !holds {
                return Ok(Some(Violation {
                    kind: prop.kind.to_string(),
                    detail: format!("{} refuted by eval_recursive", prop.name),
                }));
            }
        }
        Ok(None)
    }
}

impl<E, P> CaseOracle for EngineOracle<E, P>
where
    E: InformationExchange + Clone,
    P: ActionProtocol<E>,
{
    fn check(&mut self, case: &FuzzCase) -> Result<CaseOutcome, EbaError> {
        let sys = self.system(case)?;
        let n = sys.params().n();
        let horizon_point = sys.point(0, sys.horizon());
        let decisions: Vec<Option<Value>> = AgentId::all(n)
            .map(|a| sys.decided_at(horizon_point, a))
            .collect();
        // Decision rounds from the stored actions: the first round whose
        // action is a decide.
        let mut rounds: Vec<Option<u32>> = vec![None; n];
        for m in 0..sys.horizon() {
            let point = sys.point(0, m);
            for (i, round) in rounds.iter_mut().enumerate() {
                if round.is_none()
                    && matches!(
                        sys.action_at(point, AgentId::new(i)),
                        Some(Action::Decide(_))
                    )
                {
                    *round = Some(m + 1);
                }
            }
        }
        let violation = check_spec(&sys).into_iter().next().map(|v| Violation {
            kind: v.kind.to_string(),
            detail: format!(
                "{} fails at (run {}, time {}){}",
                v.property,
                v.run,
                v.time,
                if v.oracle_confirmed {
                    " [oracle-confirmed]"
                } else {
                    " [NOT CONFIRMED by eval_recursive — engine bug?]"
                }
            ),
        });
        Ok(CaseOutcome {
            decisions,
            rounds,
            violation,
        })
    }
}
