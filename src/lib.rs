#![warn(missing_docs)]

//! Facade crate for the EBA workspace: a reproduction of *Optimal Eventual
//! Byzantine Agreement Protocols with Omission Failures* (Alpturer, Halpern
//! & van der Meyden, PODC 2023).
//!
//! Re-exports the workspace crates under one roof:
//!
//! * [`core`] — protocols, exchanges, failure model, communication graphs;
//! * [`sim`] — the lockstep round simulator, traces, metrics, EBA spec
//!   checking, and exhaustive run enumeration;
//! * [`epistemic`] — interpreted systems, the epistemic model checker, and
//!   the knowledge-based-program implements-checker;
//! * [`transport`] — a threaded message-passing runtime with omission
//!   fault injection;
//! * [`service`] — the async multiplexed consensus service (thousands of
//!   concurrent sessions over a worker pool);
//! * [`stat`] — the Monte Carlo statistical model checker (estimated
//!   violation probability with Wilson / Clopper–Pearson confidence
//!   intervals, sharded reproducibly across workers);
//! * [`experiments`] — the table/figure generators (E1–E9).
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

pub use eba_core as core;
pub use eba_epistemic as epistemic;
pub use eba_experiments as experiments;
pub use eba_service as service;
pub use eba_sim as sim;
pub use eba_stat as stat;
pub use eba_transport as transport;

/// One-stop prelude: the commonly used types from every crate.
pub mod prelude {
    pub use eba_core::prelude::*;
    pub use eba_sim::prelude::*;
}
