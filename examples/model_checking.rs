//! Machine-check the paper's implementation theorems on small instances.
//!
//! Builds the complete interpreted system `I_{γ,P}` (every failure
//! pattern, every input vector), evaluates the knowledge-based programs
//! `P0`/`P1` — including the `C_N(t-faulty ∧ …)` common-knowledge guards —
//! at every point, and compares with what the concrete protocols do:
//!
//! * Thm 6.5 — `P_min` implements `P0` in `γ_min`;
//! * Thm 6.6 — `P_basic` implements `P0` in `γ_basic`;
//! * Thm A.21 — `P_opt` implements `P1` in `γ_fip` (the headline result).
//!
//! ```text
//! cargo run --release --example model_checking
//! ```

use eba::core::kbp::KnowledgeBasedProgram;
use eba::epistemic::prelude::*;
use eba::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("The knowledge-based programs under check:\n");
    println!("{}\n", KnowledgeBasedProgram::P0);
    println!("{}\n", KnowledgeBasedProgram::P1);

    // Theorem 6.5: P_min implements P0 in γ_min(3,1).
    let params = Params::new(3, 1)?;
    {
        let ctx = Context::minimal(params);
        let proto = *ctx.protocol();
        let sys = InterpretedSystem::from_context(ctx, 4, 10_000_000, Parallelism::Auto)?;
        let report = check_implements(&sys, &proto, KnowledgeBasedProgram::P0);
        println!(
            "Thm 6.5  γ_min(3,1):  {} runs, {} comparisons, {} mismatches — {}",
            report.runs,
            report.comparisons,
            report.mismatches.len(),
            verdict(report.is_ok()),
        );

        // The EBA spec over the same system, answered as ONE compiled
        // query batch: every formula is hash-consed into a shared arena,
        // scheduled once, and answered with a counterexample-carrying
        // verdict (all valid here, so no witnesses).
        let mut spec = Vec::new();
        for i in AgentId::all(3) {
            for j in AgentId::all(3) {
                spec.push(Formula::not(Formula::And(vec![
                    Formula::Nonfaulty(i),
                    Formula::Nonfaulty(j),
                    Formula::DecidedIs(i, Some(Value::Zero)),
                    Formula::DecidedIs(j, Some(Value::One)),
                ])));
            }
            for v in Value::ALL {
                spec.push(Formula::implies(
                    Formula::DecidedIs(i, Some(v)),
                    Formula::ExistsInit(v),
                ));
            }
        }
        let mut arena = FormulaArena::new();
        let roots: Vec<NodeId> = spec.iter().map(|f| arena.intern(f)).collect();
        let plan = QueryPlan::new(&arena, &roots);
        let session = EvalSession::evaluate(&sys, &arena, &plan);
        let valid = roots.iter().filter(|r| session.verdict(**r).holds).count();
        assert_eq!(valid, roots.len(), "the EBA spec is valid in γ_min");
        println!(
            "         EBA spec:     {} formulas in one batch — {} shared nodes \
             evaluated instead of {} naive — {}",
            roots.len(),
            plan.evaluated_node_count(),
            plan.naive_node_count(),
            verdict(valid == roots.len()),
        );

        // A deliberately false query demonstrates the witness: the
        // verdict pins the first (run, time) where the formula fails.
        let all_prefer_zero = Formula::InitIs(AgentId::new(0), Value::Zero);
        let vd = sys.query(&all_prefer_zero);
        let (run, time) = vd.counterexample.expect("not every run starts at 0");
        assert!(!sys.satisfied_at(&all_prefer_zero, run, time));
        println!(
            "         counterexample demo: `init_0 = 0` fails at (run {run}, \
             time {time}), inits = {:?}\n",
            sys.inits(run),
        );
    }

    // Theorem 6.6: P_basic implements P0 in γ_basic(3,1).
    {
        let ctx = Context::basic(params);
        let proto = *ctx.protocol();
        let sys = InterpretedSystem::from_context(ctx, 4, 10_000_000, Parallelism::Auto)?;
        let report = check_implements(&sys, &proto, KnowledgeBasedProgram::P0);
        println!(
            "Thm 6.6  γ_basic(3,1): {} runs, {} comparisons, {} mismatches — {}",
            report.runs,
            report.comparisons,
            report.mismatches.len(),
            verdict(report.is_ok()),
        );
    }

    // Theorem A.21: P_opt implements P1 in γ_fip(3,1). This enumerates
    // every failure pattern of the full-information exchange (~100k runs).
    {
        let ctx = Context::fip(params);
        let proto = *ctx.protocol();
        println!("\nbuilding the full-information system γ_fip(3,1)…");
        let t0 = std::time::Instant::now();
        let sys = InterpretedSystem::from_context(ctx, 4, 10_000_000, Parallelism::Auto)?;
        println!(
            "  {} runs / {} points / {} distinct interned states in {:?}",
            sys.run_count(),
            sys.point_count(),
            sys.distinct_states(),
            t0.elapsed()
        );
        let report = check_implements(&sys, &proto, KnowledgeBasedProgram::P1);
        println!(
            "Thm A.21 γ_fip(3,1):  {} comparisons, {} mismatches — {}",
            report.comparisons,
            report.mismatches.len(),
            verdict(report.is_ok()),
        );
        println!(
            "\nBy Thms 6.3 and 7.6/7.7, implementing the knowledge-based program \
             in a safe context makes these protocols optimal (Cor 6.7, Cor 7.8)."
        );
    }
    Ok(())
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "VERIFIED"
    } else {
        "FAILED"
    }
}
