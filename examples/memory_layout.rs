//! Measures the interned-arena memory layout against the legacy
//! collected path on the full `E_fip/P_opt` `(3, 1)` system — the
//! numbers behind the "memory layout & scaling" section of
//! `docs/GUIDE.md`.
//!
//! One phase per process so the kernel's peak-RSS high-water mark
//! (`VmHWM`) measures exactly that phase:
//!
//! ```text
//! cargo run --release --example memory_layout -- streamed    # arena build
//! cargo run --release --example memory_layout -- collected   # legacy build
//! cargo run --release --example memory_layout -- fip41       # (4,1) reach
//! ```

use eba::core::kbp::KnowledgeBasedProgram;
use eba::epistemic::prelude::*;
use eba::prelude::*;

fn peak_rss_mb() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse::<f64>().ok())
        .map_or(f64::NAN, |kb| kb / 1024.0)
}

fn report<E: eba::core::exchange::InformationExchange>(
    label: &str,
    sys: &InterpretedSystem<E>,
    secs: f64,
) {
    println!(
        "{label}: {} runs, {} points, {} distinct states \
         ({:.1}% of the {} (agent, point) slots), {secs:.2}s, peak RSS {:.0} MiB",
        sys.run_count(),
        sys.point_count(),
        sys.distinct_states(),
        100.0 * sys.distinct_states() as f64 / (sys.params().n() * sys.point_count()) as f64,
        sys.params().n() * sys.point_count(),
        peak_rss_mb(),
    );
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "streamed".into());
    let params = Params::new(3, 1).unwrap();
    let t0 = std::time::Instant::now();
    match mode.as_str() {
        // The tentpole path: enumeration streams into the interned
        // columnar store; the run vector never exists.
        "streamed" => {
            let sys = InterpretedSystem::from_context(
                Context::fip(params),
                4,
                10_000_000,
                Parallelism::Auto,
            )
            .unwrap();
            report("streamed  fip(3,1)", &sys, t0.elapsed().as_secs_f64());
            assert!(sys.run_count() > 90_000);
        }
        // The legacy path: collect every trajectory, then classify.
        "collected" => {
            let ctx = Context::fip(params);
            // Same enumeration parallelism as the streamed mode, so the
            // comparison isolates the storage layout.
            let runs = Scenario::of(&ctx)
                .horizon(4)
                .parallelism(Parallelism::Auto)
                .enumerate()
                .unwrap();
            let sys = InterpretedSystem::from_runs(FipExchange::new(params), runs, 4).unwrap();
            report("collected fip(3,1)", &sys, t0.elapsed().as_secs_f64());
        }
        // Newly reachable scale: the (4, 1) full-information system.
        "fip41" => {
            let params = Params::new(4, 1).unwrap();
            let sys = InterpretedSystem::from_context(
                Context::fip(params),
                params.default_horizon(),
                50_000_000,
                Parallelism::Auto,
            )
            .unwrap();
            report("streamed  fip(4,1)", &sys, t0.elapsed().as_secs_f64());
            let check = std::time::Instant::now();
            let report = check_implements(&sys, &POpt::new(params), KnowledgeBasedProgram::P0);
            println!(
                "  P_opt implements P0 at (4,1): {} ({} comparisons, {:.2}s)",
                if report.is_ok() { "yes" } else { "NO" },
                report.comparisons,
                check.elapsed().as_secs_f64()
            );
        }
        other => {
            eprintln!("unknown mode {other:?}: use streamed | collected | fip41");
            std::process::exit(2);
        }
    }
}
