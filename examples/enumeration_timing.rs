//! Times the sequential vs parallel exhaustive enumerators on the largest
//! instance the tier-1 suite exhausts (`E_fip/P_opt`, n = 3, t = 1,
//! horizon 4 — ~10⁵ deduplicated runs), verifies they agree, and then
//! spec-checks the same context through a streaming `RunSink` (no
//! collected `Vec` at all).
//!
//! ```text
//! cargo run --release --example enumeration_timing
//! ```

use std::time::Instant;

use eba::prelude::*;
use eba::sim::enumerate::EnumRun;

fn main() {
    let params = Params::new(3, 1).unwrap();
    let ctx = Context::fip(params);
    let (horizon, limit) = (4, 10_000_000);

    let t0 = Instant::now();
    let sequential = enumerate_runs(ctx.exchange(), ctx.protocol(), horizon, limit).unwrap();
    let sequential_time = t0.elapsed();
    println!(
        "sequential:        {} runs in {sequential_time:.2?}",
        sequential.len()
    );

    for parallelism in [
        Parallelism::Fixed(2),
        Parallelism::Fixed(4),
        Parallelism::Auto,
    ] {
        let t0 = Instant::now();
        let parallel =
            enumerate_parallel(ctx.exchange(), ctx.protocol(), horizon, limit, parallelism)
                .unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(sequential.len(), parallel.len());
        assert!(
            sequential
                .iter()
                .zip(&parallel)
                .all(|(s, p)| s.nonfaulty == p.nonfaulty && s.states == p.states),
            "parallel output must be bit-for-bit identical"
        );
        println!(
            "{:<18} {} runs in {elapsed:.2?} ({:.2}x, identical output)",
            format!("{parallelism:?}:"),
            parallel.len(),
            sequential_time.as_secs_f64() / elapsed.as_secs_f64()
        );
    }
    println!(
        "(workers resolved by Auto on this machine: {})",
        Parallelism::Auto.worker_count()
    );

    // Streaming: fold the EBA spec over every run through a sink — same
    // deterministic order, but nothing retains the ~10⁵ trajectories.
    let t0 = Instant::now();
    let mut decided_everywhere = 0usize;
    let total = enumerate_into(
        &ctx,
        horizon,
        limit,
        Parallelism::Auto,
        &mut |run: EnumRun<FipExchange>| {
            let last = run.states.last().expect("nonempty");
            if run
                .nonfaulty
                .iter()
                .all(|a| ctx.exchange().decided(&last[a.index()]).is_some())
            {
                decided_everywhere += 1;
            }
            Ok(())
        },
    )
    .unwrap();
    println!(
        "streamed (sink):   {total} runs folded in {:.2?}; nonfaulty all decided in {decided_everywhere}",
        t0.elapsed()
    );
    assert_eq!(total, sequential.len());
    assert_eq!(decided_everywhere, total, "Termination on every run");
}
