//! Times the sequential vs parallel exhaustive enumerators on the largest
//! instance the tier-1 suite exhausts (`P_opt` over `E_fip`, n = 3,
//! t = 1, horizon 4 — ~10⁵ deduplicated runs), and verifies they agree.
//!
//! ```text
//! cargo run --release --example enumeration_timing
//! ```

use std::time::Instant;

use eba::prelude::*;

fn main() {
    let params = Params::new(3, 1).unwrap();
    let ex = FipExchange::new(params);
    let proto = POpt::new(params);
    let (horizon, limit) = (4, 10_000_000);

    let t0 = Instant::now();
    let sequential = enumerate_runs(&ex, &proto, horizon, limit).unwrap();
    let sequential_time = t0.elapsed();
    println!(
        "sequential:        {} runs in {sequential_time:.2?}",
        sequential.len()
    );

    for parallelism in [
        Parallelism::Fixed(2),
        Parallelism::Fixed(4),
        Parallelism::Auto,
    ] {
        let t0 = Instant::now();
        let parallel = enumerate_parallel(&ex, &proto, horizon, limit, parallelism).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(sequential.len(), parallel.len());
        assert!(
            sequential
                .iter()
                .zip(&parallel)
                .all(|(s, p)| s.nonfaulty == p.nonfaulty && s.states == p.states),
            "parallel output must be bit-for-bit identical"
        );
        println!(
            "{:<18} {} runs in {elapsed:.2?} ({:.2}x, identical output)",
            format!("{parallelism:?}:"),
            parallel.len(),
            sequential_time.as_secs_f64() / elapsed.as_secs_f64()
        );
    }
    println!(
        "(workers resolved by Auto on this machine: {})",
        Parallelism::Auto.worker_count()
    );
}
