//! Print the cost/benefit tables of Section 8: message complexity
//! (Prop 8.1) and failure-free decision times (Prop 8.2).
//!
//! ```text
//! cargo run --release --example complexity_report
//! ```

use eba::experiments::{e1_bits, e3_failure_free_ones};

fn main() {
    let (rows, table) = e1_bits::run(&[(4, 1), (8, 3), (12, 5), (16, 7)]);
    println!("{table}");
    for r in &rows {
        assert_eq!(
            r.min_bits,
            (r.n * r.n) as u64,
            "Prop 8.1: P_min sends exactly n² bits"
        );
    }
    println!(
        "P_min is exactly n² bits in every run; P_basic/n² grows with t; the \
         FIP pays the O(n⁴t²) graph overhead.\n"
    );

    let (_, table3) = e3_failure_free_ones::run(12, &[0, 1, 2, 3, 4, 5, 7, 9]);
    println!("{table3}");
    println!(
        "For failure-free runs the basic exchange already matches full \
         information (round 2) at a tiny fraction of the bits — the paper's \
         closing argument for limited information exchange."
    );
}
