//! Run the full-information protocol over real OS threads and a byte-level
//! wire protocol, with omission faults injected at the router.
//!
//! One thread per agent, crossbeam channels, hand-rolled codecs; the
//! outcome is cross-checked against the lockstep simulator — same rounds,
//! same decisions, same final states.
//!
//! ```text
//! cargo run --release --example threaded_cluster
//! ```

use eba::prelude::*;
use eba::transport::{run_cluster, FipCodec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(8, 3)?;
    let exchange = FipExchange::new(params);
    let protocol = POpt::new(params);

    // Three faulty agents, silent for the first two rounds.
    let faulty: AgentSet = (0..3).map(AgentId::new).collect();
    let mut pattern = FailurePattern::new(params, faulty.complement(8))?;
    for agent in faulty.iter() {
        pattern.silence_agent(agent, 0..2, false)?;
    }
    let inits = vec![
        Value::One,
        Value::Zero,
        Value::One,
        Value::One,
        Value::One,
        Value::One,
        Value::One,
        Value::One,
    ];
    let horizon = params.default_horizon();

    println!("== 8 agent threads, 3 faulty, full-information exchange ==\n");
    let report = run_cluster(&exchange, &protocol, &FipCodec, &pattern, &inits, horizon)?;
    for agent in params.agents() {
        println!(
            "  {agent}: decided {} in round {}",
            report.decision_values[agent.index()].map_or("⊥".into(), |v| v.to_string()),
            report.decision_rounds[agent.index()].map_or("∞".into(), |r| r.to_string()),
        );
    }
    println!(
        "\n  wire traffic: {} frames, {} bytes sent, {} bytes delivered",
        report.frames_sent, report.wire_bytes_sent, report.wire_bytes_delivered
    );

    // Cross-check against the lockstep simulator.
    let trace = run(
        &exchange,
        &protocol,
        &pattern,
        &inits,
        &SimOptions::default().with_horizon(horizon),
    )?;
    assert_eq!(report.decision_rounds, trace.metrics.decision_rounds);
    assert_eq!(report.decision_values, trace.metrics.decision_values);
    assert_eq!(&report.final_states, trace.states.last().unwrap());
    println!("  lockstep cross-check: identical decisions and final states ✓");
    Ok(())
}
