//! Example 7.1 from the paper, live: `n = 20`, `t = 10`, agents 0–9
//! faulty and totally silent, every initial preference 1.
//!
//! The full-information protocol `P_opt` gains common knowledge of the
//! faulty set after two rounds and decides in **round 3**; `P_min` and
//! `P_basic` cannot rule out a hidden 0-chain and wait until **round 12**
//! (`t + 2`). The ablated `P_opt∖CK` shows that the common-knowledge
//! rules are exactly what buys the speedup.
//!
//! ```text
//! cargo run --release --example silent_adversary
//! ```

use eba::core::graph::FipAnalysis;
use eba::core::protocols::ActionProtocol;
use eba::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(20, 10)?;
    let silent: AgentSet = (0..10).map(AgentId::new).collect();
    let pattern = silent_pattern(params, silent, params.default_horizon())?;
    let inits = vec![Value::One; 20];
    let observer = AgentId::new(10); // a nonfaulty agent

    println!("== Example 7.1: n = 20, t = 10, agents a0–a9 silent, all prefer 1 ==\n");

    // The epistemic timeline, from the observer's own communication graph.
    let fip_ctx = Context::fip(params);
    let trace = Scenario::of(&fip_ctx)
        .pattern(pattern.clone())
        .inits(&inits)
        .run()?;
    for m in 0..=3u32 {
        let state = &trace.states[m as usize][observer.index()];
        let analysis = FipAnalysis::analyze(&state.graph, params, observer);
        println!(
            "time {m}: {observer} knows {:2} faulty agents; C_N(t-faulty ∧ no-decided ∧ ∃1) {}",
            analysis.owner_known_faulty().len(),
            if analysis.common_knowledge_holds(Value::One) {
                "HOLDS → decide next round"
            } else {
                "does not hold"
            },
        );
    }
    println!();

    // Decision rounds for all four protocols on the same adversary.
    let rounds = |name: &str, r: u32| println!("  {name:<10} decides in round {r}");
    rounds(
        fip_ctx.protocol().name(),
        trace
            .metrics
            .max_decision_round(pattern.nonfaulty())
            .expect("all decide"),
    );
    let no_ck_ctx = Context::new(
        FipExchange::new(params),
        POpt::without_common_knowledge(params),
    );
    let t2 = Scenario::of(&no_ck_ctx)
        .pattern(pattern.clone())
        .inits(&inits)
        .run()?;
    rounds(
        no_ck_ctx.protocol().name(),
        t2.metrics.max_decision_round(pattern.nonfaulty()).unwrap(),
    );
    let basic_ctx = Context::basic(params);
    let basic = Scenario::of(&basic_ctx)
        .pattern(pattern.clone())
        .inits(&inits)
        .run()?;
    rounds(
        "P_basic",
        basic
            .metrics
            .max_decision_round(pattern.nonfaulty())
            .unwrap(),
    );
    let min_ctx = Context::minimal(params);
    let min = Scenario::of(&min_ctx)
        .pattern(pattern.clone())
        .inits(&inits)
        .run()?;
    rounds(
        "P_min",
        min.metrics.max_decision_round(pattern.nonfaulty()).unwrap(),
    );

    println!("\npaper: P_fip decides in round 3; P_min and P_basic in round 12.");
    Ok(())
}
