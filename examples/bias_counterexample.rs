//! The introduction's impossibility argument, executed: why no protocol
//! can decide 0 the moment it hears about a 0 under omission failures.
//!
//! Runs the paper's `r` and `r'` (n = 3, t = 1) with the naive 0-biased
//! protocol and shows the Agreement violation, then shows the 0-chain
//! protocols surviving the identical adversary, and the naive protocol
//! surviving under crash failures.
//!
//! ```text
//! cargo run --release --example bias_counterexample
//! ```

use eba::experiments::e8_bias_counterexample;

fn main() {
    let (rows, table) = e8_bias_counterexample::run(1000, 0xEBA);
    println!("{table}");

    let violated = rows
        .iter()
        .find(|r| r.scenario.starts_with("r'") && r.protocol == "P_naive")
        .map(|r| r.violations == 1)
        .unwrap_or(false);
    assert!(violated, "the counterexample must trigger");
    println!(
        "In r', nonfaulty a1 cannot distinguish the run from r (where it \
         must decide 1), while nonfaulty a2 just heard about a 0 — the \
         naive rule splits them. The paper's fix: only decide 0 on a \
         0-chain of *just-decided* announcements, which omission-faulty \
         agents cannot forge late."
    );
}
