//! Quickstart: a complete, asserting walkthrough of the crate.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Two scenarios, both checked with `assert!`s so the example doubles as
//! an executable piece of documentation (CI runs it):
//!
//! 1. **Failure-free `P_opt`** — the paper's optimal protocol over the
//!    full-information exchange decides in round 2 when nothing fails
//!    (Prop 8.2 analogue for the FIP), printed round by round.
//! 2. **`P_basic` under omissions** — a faulty agent drops messages, the
//!    protocol still satisfies the EBA specification, and every
//!    0-decision is justified by a 0-chain.

use eba::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    failure_free_popt()?;
    lossy_pbasic()?;
    println!("\nquickstart: all assertions passed");
    Ok(())
}

/// Scenario 1: `P_opt` on a failure-free run, round-by-round.
fn failure_free_popt() -> Result<(), Box<dyn std::error::Error>> {
    // 5 agents, at most 2 omission-faulty (the SO(2) context).
    let params = Params::new(5, 2)?;

    // The context γ: P_opt reads the communication graph of the
    // full-information exchange E_fip; together they are optimal among
    // EBA protocols (Prop 7.9 / Cor 7.8). `Context::fip` bundles the
    // pair; the registry (`NamedStack::by_name("E_fip/P_opt", …)`) builds
    // the same stack from a string.
    let ctx = Context::fip(params);

    // Agent 0 prefers 0, everyone else prefers 1 — and nobody fails
    // (the failure-free pattern is the Scenario default).
    let inits = vec![Value::Zero, Value::One, Value::One, Value::One, Value::One];
    let trace = Scenario::of(&ctx).inits(&inits).run()?;

    println!("== scenario 1: {} on a failure-free run ==", ctx.name());

    // Round-by-round state: `states[m][i]` is agent i's state at time m.
    for (m, round_states) in trace.states.iter().enumerate() {
        println!("  time {m}:");
        for (i, state) in round_states.iter().enumerate() {
            println!("    a{i}: {state}");
        }
        if m >= 2 {
            println!("    … (all later rounds are quiescent)");
            break;
        }
    }

    // Agent 0 holds the 0 and can decide it immediately (round 1); with
    // full information and no failures everyone else hears the 0 in round
    // 1 and decides it in round 2 — no EBA protocol can be faster.
    for agent in params.agents() {
        assert_eq!(trace.decision_value(agent), Some(Value::Zero));
        let expected = if agent == AgentId::new(0) { 1 } else { 2 };
        assert_eq!(trace.decision_round(agent), Some(expected));
    }
    println!("  a0 decided 0 in round 1; everyone else in round 2 (optimal)");

    // The four EBA properties of Section 5 hold.
    check_eba(ctx.exchange(), &trace)?;
    check_validity_all(&trace)?;
    check_decides_by(&trace, params.decide_by_round())?;
    Ok(())
}

/// Scenario 2: `P_basic` against a sending-omission adversary.
fn lossy_pbasic() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(5, 2)?;
    let ctx = Context::basic(params);

    let inits = vec![Value::Zero, Value::One, Value::One, Value::One, Value::One];

    // Adversary: agent 4 is faulty and drops its round-1 and round-2
    // messages to agents 1 and 2.
    let mut pattern =
        FailurePattern::new(params, AgentSet::singleton(AgentId::new(4)).complement(5))?;
    for m in 0..2 {
        pattern.drop_message(m, AgentId::new(4), AgentId::new(1))?;
        pattern.drop_message(m, AgentId::new(4), AgentId::new(2))?;
    }

    let trace = Scenario::of(&ctx)
        .pattern(pattern.clone())
        .inits(&inits)
        .run()?;

    println!("\n== scenario 2: {} under omissions ==", ctx.name());
    for agent in params.agents() {
        println!(
            "  {agent}: decided {} in round {} ({})",
            trace
                .decision_value(agent)
                .map_or("⊥".into(), |v| v.to_string()),
            trace
                .decision_round(agent)
                .map_or("∞".into(), |r| r.to_string()),
            if pattern.is_faulty(agent) {
                "faulty"
            } else {
                "nonfaulty"
            },
        );
    }
    println!(
        "  messages sent: {} ({} bits); delivered: {}",
        trace.metrics.messages_sent, trace.metrics.bits_sent, trace.metrics.messages_delivered,
    );

    // The spec holds on every run of the context, lossy or not (Prop 6.1);
    // decisions arrive by round t + 2.
    check_eba(ctx.exchange(), &trace)?;
    check_validity_all(&trace)?;
    check_decides_by(&trace, params.decide_by_round())?;
    assert!(trace
        .metrics
        .decision_rounds
        .iter()
        .all(|r| r.is_some_and(|round| round <= params.decide_by_round())));
    // Agreement on the only value anyone held besides 1's majority: the 0
    // spread from agent 0, so everyone decides 0.
    assert!(params
        .agents()
        .all(|a| trace.decision_value(a) == Some(Value::Zero)));
    println!(
        "  EBA specification: satisfied (decisions by round t + 2 = {})",
        params.decide_by_round()
    );

    // Every 0-decision is backed by a 0-chain (the paper's key safety
    // device against omission failures): an unbroken path of Decide(0)
    // messages from an agent that initially preferred 0.
    let chain = zero_chain_ending_at(&trace, AgentId::new(3)).expect("a3 decided 0");
    let rendered: Vec<String> = chain.iter().map(|a| a.to_string()).collect();
    println!("  0-chain into a3: {}", rendered.join(" → "));
    // (The Err carries the first agent whose 0-decision lacks a chain.)
    verify_zero_chains(&trace).map_err(|a| format!("{a} decided 0 without a 0-chain"))?;

    // A compact timeline of the whole run.
    println!("\n{}", render_timeline(&trace));
    Ok(())
}
