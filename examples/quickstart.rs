//! Quickstart: run eventual Byzantine agreement among 5 agents, one of
//! which omits messages, and inspect the outcome.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eba::core::protocols::ActionProtocol;
use eba::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 5 agents, at most 2 omission-faulty (SO(2)).
    let params = Params::new(5, 2)?;

    // The paper's basic information exchange + its optimal action protocol.
    let exchange = BasicExchange::new(params);
    let protocol = PBasic::new(params);

    // Agent 0 prefers 0; everyone else prefers 1.
    let inits = vec![
        Value::Zero,
        Value::One,
        Value::One,
        Value::One,
        Value::One,
    ];

    // Adversary: agent 4 is faulty and drops its round-1 and round-2
    // messages to agents 1 and 2.
    let mut pattern = FailurePattern::new(
        params,
        AgentSet::singleton(AgentId::new(4)).complement(5),
    )?;
    for m in 0..2 {
        pattern.drop_message(m, AgentId::new(4), AgentId::new(1))?;
        pattern.drop_message(m, AgentId::new(4), AgentId::new(2))?;
    }

    // Execute the run.
    let trace = run(&exchange, &protocol, &pattern, &inits, &SimOptions::default())?;

    println!("== {} over {} with {} ==", protocol.name(), exchange.name(), params);
    for agent in params.agents() {
        println!(
            "  {agent}: decided {} in round {} ({})",
            trace.decision_value(agent).map_or("⊥".into(), |v| v.to_string()),
            trace.decision_round(agent).map_or("∞".into(), |r| r.to_string()),
            if pattern.is_faulty(agent) { "faulty" } else { "nonfaulty" },
        );
    }
    println!(
        "  messages sent: {} ({} bits); delivered: {}",
        trace.metrics.messages_sent, trace.metrics.bits_sent, trace.metrics.messages_delivered,
    );

    // The paper's four EBA properties hold on every run (Prop 6.1):
    check_eba(&exchange, &trace)?;
    check_validity_all(&trace)?;
    check_decides_by(&trace, params.decide_by_round())?;
    println!("  EBA specification: satisfied (decisions by round t + 2 = {})", params.decide_by_round());

    // Every 0-decision is backed by a 0-chain (the paper's key safety
    // device against omission failures).
    if let Some(chain) = zero_chain_ending_at(&trace, AgentId::new(3)) {
        let rendered: Vec<String> = chain.iter().map(|a| a.to_string()).collect();
        println!("  0-chain into a3: {}", rendered.join(" → "));
    }

    // A compact timeline of the whole run.
    println!("\n{}", render_timeline(&trace));
    Ok(())
}
