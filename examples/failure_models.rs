//! Failure-model walkthrough: one stack, four environments.
//!
//! Runs `E_basic/P_basic` at `(n, t) = (4, 1)` against each failure
//! model's representative adversary, then exhaustively enumerates the
//! `(3, 1)` context under all four models to show the run-set hierarchy
//! `FailureFree ⊂ Crash ⊂ SendingOmission ⊂ GeneralOmission`.
//!
//! Run with `cargo run --release --example failure_models`.

use eba::prelude::*;
use eba::sim::enumerate::EnumRun;

fn main() -> Result<(), EbaError> {
    let params = Params::new(4, 1)?;
    let faulty = AgentSet::singleton(AgentId::new(0));
    let inits = [Value::Zero, Value::One, Value::One, Value::One];
    let horizon = params.default_horizon();

    println!("=== E_basic/P_basic at (4, 1): one adversary per model ===");
    let ctx = Context::basic(params);

    // Sending omissions (the paper's model, the default): agent 0 is
    // silent toward everyone else.
    let silent = silent_pattern(params, faulty, horizon)?;
    let trace = Scenario::of(&ctx).pattern(silent).inits(&inits).run()?;
    let so_round = trace.max_decision_round(faulty.complement(4)).unwrap();
    println!("sending_omission: silent a0, nonfaulty decide by round {so_round}");

    // Crash: agent 0 crashes before round 1 (self-delivery lost too).
    let crashed = crashed_from_start_pattern(params, faulty, horizon)?;
    let crash_ctx = ctx.with_model(FailureModel::Crash);
    let trace = Scenario::of(&crash_ctx)
        .pattern(crashed)
        .inits(&inits)
        .run()?;
    let crash_round = trace.max_decision_round(faulty.complement(4)).unwrap();
    println!("crash:            crashed a0, nonfaulty decide by round {crash_round}");

    // General omissions: agent 0 is fully isolated — its *incoming*
    // messages are dropped as well, which SO(t) cannot express.
    let isolated = isolation_pattern(params, faulty, horizon)?;
    assert!(
        FailureModel::SendingOmission
            .admits_pattern(&isolated)
            .is_err(),
        "isolation needs receive-side drops"
    );
    let go_ctx = ctx.with_model(FailureModel::GeneralOmission);
    let trace = Scenario::of(&go_ctx)
        .pattern(isolated)
        .inits(&inits)
        .run()?;
    let go_round = trace.max_decision_round(faulty.complement(4)).unwrap();
    println!("general_omission: isolated a0, nonfaulty decide by round {go_round}");
    // The faulty agent holds the only 0 and never announces it, so in
    // every model the nonfaulty wait out the t + 2 = 3 deadline.
    assert_eq!((so_round, crash_round, go_round), (3, 3, 3));

    println!();
    println!("=== exhaustive run sets at (3, 1): the model hierarchy ===");
    let small = Context::basic(Params::new(3, 1)?);
    let mut counts = Vec::new();
    for model in [
        FailureModel::FailureFree,
        FailureModel::Crash,
        FailureModel::SendingOmission,
        FailureModel::GeneralOmission,
    ] {
        let mut count = 0usize;
        Scenario::of(&small)
            .model(model)
            .enumerate_into(&mut |_run: EnumRun<BasicExchange>| {
                count += 1;
                Ok(())
            })?;
        println!("{:<17} {count:>6} deduplicated runs", model.name());
        counts.push(count);
    }
    assert!(
        counts.windows(2).all(|w| w[0] < w[1]),
        "run sets must grow strictly with adversary power: {counts:?}"
    );
    println!("every weaker model's run set is contained in the stronger one's");
    Ok(())
}
