//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate implements the subset of the criterion 0.5 API the EBA benches
//! use: [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `sample_size`/`measurement_time`/`throughput`, `bench_function`,
//! `bench_with_input`, and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! Measurement is deliberately simple: per benchmark it warms up, then
//! times batches until the measurement budget is spent, and prints the
//! mean wall-clock time per iteration. There is no statistical analysis,
//! no HTML report, and no saved baseline — this harness exists so the
//! benches compile, run, and print comparable numbers offline.
//!
//! Passing `--smoke` to a bench binary (`cargo bench -- --smoke`) caps
//! every measurement budget at a few milliseconds: each benchmark still
//! builds its inputs and runs at least a few iterations (so CI catches
//! panics and assertion failures), but the sweep finishes quickly.

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Whether the process was invoked with `--smoke` (CI smoke runs: keep
/// every benchmark's measurement budget tiny).
fn smoke_mode() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| std::env::args().any(|a| a == "--smoke"))
}

/// Caps a measurement budget: 500 ms normally (keeps full offline sweeps
/// fast), 5 ms under `--smoke`.
fn cap_budget(requested: Duration) -> Duration {
    let cap = if smoke_mode() {
        Duration::from_millis(5)
    } else {
        Duration::from_millis(500)
    };
    requested.min(cap)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter (for single-function sweeps).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`]; lets `bench_function` take either a
/// string or an explicit id.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Declared throughput of a benchmark (accepted and echoed, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The bench harness entry point.
pub struct Criterion {
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_measurement_time: cap_budget(Duration::from_millis(300)),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            measurement_time: cap_budget(Duration::from_millis(300)),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let time = self.default_measurement_time;
        run_one("", &id.into_benchmark_id().id, time, f);
        self
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples (accepted for API compatibility;
    /// this harness batches by time, not by sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        // The real criterion spends this long per benchmark; cap it so a
        // full offline bench sweep stays fast (and a `--smoke` run stays
        // nearly instant).
        self.measurement_time = cap_budget(d);
        self
    }

    /// Declares the group's throughput (echoed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        println!("  throughput: {t:?}");
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into_benchmark_id().id,
            self.measurement_time,
            f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&self.name, &id.id, self.measurement_time, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    measurement_time: Duration,
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `f`, storing the mean wall-clock duration per call.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warmup (one pass is enough under `--smoke`).
        black_box(f());
        if !smoke_mode() {
            black_box(f());
        }

        let budget = self.measurement_time;
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
            // Don't spin forever on nanosecond-scale bodies.
            if iters >= 10_000_000 {
                break;
            }
        }
        self.mean = Some(start.elapsed() / iters.max(1) as u32);
    }
}

fn run_one(group: &str, id: &str, measurement_time: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        measurement_time,
        mean: None,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match bencher.mean {
        Some(mean) => println!("  bench {label:<40} {mean:>12.2?}/iter"),
        None => println!("  bench {label:<40} (no measurement)"),
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
