//! Sequence sampling helpers.

use crate::RngCore;

/// Random sampling from iterators.
pub trait IteratorRandom: Iterator + Sized {
    /// Collects `amount` items chosen uniformly without replacement
    /// (reservoir sampling). Returns fewer items if the iterator is
    /// shorter than `amount`. Order of the result is unspecified.
    fn choose_multiple<R: RngCore + ?Sized>(
        mut self,
        rng: &mut R,
        amount: usize,
    ) -> Vec<Self::Item> {
        let mut reservoir: Vec<Self::Item> = Vec::with_capacity(amount);
        if amount == 0 {
            return reservoir;
        }
        for item in self.by_ref().take(amount) {
            reservoir.push(item);
        }
        for (offset, item) in self.enumerate() {
            let i = amount as u64 + offset as u64;
            let j = rng.next_u64() % (i + 1);
            if (j as usize) < amount {
                reservoir[j as usize] = item;
            }
        }
        reservoir
    }
}

impl<I: Iterator> IteratorRandom for I {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn exact_amount_without_replacement() {
        let mut rng = StdRng::seed_from_u64(5);
        for k in 0..=10 {
            let mut picked = (0..10).choose_multiple(&mut rng, k);
            picked.sort_unstable();
            let len = picked.len();
            picked.dedup();
            assert_eq!(picked.len(), len, "duplicates in sample");
            assert_eq!(len, k.min(10));
            assert!(picked.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn every_element_reachable() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = [false; 5];
        for _ in 0..200 {
            for x in (0..5).choose_multiple(&mut rng, 2) {
                seen[x] = true;
            }
        }
        assert!(seen.iter().all(|s| *s));
    }
}
