//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the (small) subset of the rand 0.9 API that the EBA
//! workspace actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded with
//!   SplitMix64 (not the crates.io `StdRng`'s ChaCha12, but statistically
//!   solid for simulation workloads and fully reproducible from a seed);
//! * [`Rng::random`], [`Rng::random_bool`], [`Rng::random_range`];
//! * [`SeedableRng::seed_from_u64`];
//! * [`seq::IteratorRandom::choose_multiple`].
//!
//! Distributions are uniform. `random_range` uses a modulo reduction whose
//! bias is negligible (< 2⁻³²) for the small ranges the workspace samples.

pub mod rngs;
pub mod seq;

/// Low-level entropy source: everything derives from [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding support; only the `u64` convenience entry point is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an RNG via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // 53-bit grid over [0, 1]: the endpoint is reachable, unlike the
        // half-open range above.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * unit
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
        unit_f64(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.random_range(0..=4);
            assert!(y <= 4);
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            assert!(rng.random_bool(1.0));
            assert!(!rng.random_bool(0.0));
        }
    }

    #[test]
    fn bool_probability_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn unsized_rng_works_through_references() {
        fn takes_dyn<R: Rng + ?Sized>(rng: &mut R) -> bool {
            rng.random_bool(0.5)
        }
        let mut rng = StdRng::seed_from_u64(4);
        takes_dyn(&mut rng);
    }
}
