//! Offline stand-in for the
//! [`crossbeam-channel`](https://crates.io/crates/crossbeam-channel) crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides [`bounded`]/[`unbounded`] channels with crossbeam's
//! `Sender`/`Receiver` API over `std::sync::mpsc`. Multi-producer
//! single-consumer only (all the transport layer needs); `select!` and
//! receiver cloning are not provided.

use std::fmt;
use std::sync::mpsc;
use std::time::Duration;

/// Creates an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(SenderKind::Unbounded(tx)), Receiver(rx))
}

/// Creates a bounded FIFO channel with capacity `cap` (`0` = rendezvous).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender(SenderKind::Bounded(tx)), Receiver(rx))
}

enum SenderKind<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

/// The sending half; clonable across threads.
pub struct Sender<T>(SenderKind<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(match &self.0 {
            SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
            SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
        })
    }
}

impl<T> Sender<T> {
    /// Sends a message, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns the message back if the receiving half has disconnected.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        match &self.0 {
            SenderKind::Unbounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
            SenderKind::Bounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
        }
    }
}

/// The receiving half.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and every sender has
    /// disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|_| RecvError)
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError::Empty`] if no message is ready, or
    /// [`TryRecvError::Disconnected`] once the channel is empty and every
    /// sender has disconnected.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Blocks for at most `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`RecvTimeoutError::Timeout`] if the timeout elapses, or
    /// [`RecvTimeoutError::Disconnected`] once the channel is empty and
    /// every sender has disconnected.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// Iterates over messages until every sender disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Blocking iterator over received messages; see [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// The receiver disconnected; the unsent message is returned.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Every sender disconnected and the channel is drained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error for [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message was ready.
    Empty,
    /// Every sender disconnected and the channel is drained.
    Disconnected,
}

/// Error for [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed first.
    Timeout,
    /// Every sender disconnected and the channel is drained.
    Disconnected,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_roundtrip_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::scope(|scope| {
            scope.spawn(move || tx.send(1).unwrap());
            scope.spawn(move || tx2.send(2).unwrap());
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        });
        assert!(rx.recv().is_err(), "all senders dropped");
    }

    #[test]
    fn bounded_preserves_fifo() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn send_error_returns_message() {
        let (tx, rx) = unbounded();
        drop(rx);
        let SendError(msg) = tx.send(7).unwrap_err();
        assert_eq!(msg, 7);
    }
}
