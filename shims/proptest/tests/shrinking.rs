//! The failure path minimizes inputs: a property that fails for `x >= 10`
//! and `v.len() >= 2` must shrink to exactly `x = 10`, `v = [0, 0]`
//! regardless of the sampled starting point.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    #[should_panic(expected = "x = 10")]
    fn failing_property_reports_minimal_inputs(
        x in 0u64..100_000,
        v in proptest::collection::vec(0u32..100, 2..9),
    ) {
        prop_assert!(x < 10 || v.len() < 2, "boom");
    }

    #[test]
    #[should_panic(expected = "v = [0, 0]")]
    fn failing_collection_shrinks_toward_empty(
        x in 0u64..100_000,
        v in proptest::collection::vec(0u32..100, 2..9),
    ) {
        prop_assert!(x < 10 || v.len() < 2, "boom");
    }
}
