//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate re-implements the subset of the proptest API the EBA workspace
//! uses: the [`proptest!`] macro with `#![proptest_config(..)]`,
//! [`strategy::Strategy`] with `prop_map`, range and tuple strategies,
//! [`arbitrary::any`], [`collection::vec()`], [`sample::subsequence`], and
//! the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **minimal shrinking** — on failure the harness greedily minimizes the
//!   inputs by walking [`strategy::Strategy::shrink`] candidates (integers
//!   toward the range start, collections toward empty, tuples
//!   component-wise) and reports the shrunk inputs plus the number of
//!   accepted shrink steps. There is no full shrink tree: `prop_map`ped
//!   strategies do not shrink (the mapping is not invertible), and every
//!   argument's value type must be `Clone` so candidates can be re-run;
//! * **deterministic seeding** — case `k` of every test draws from a fixed
//!   seed mixed with `k`, so failures reproduce exactly across runs and
//!   machines (real proptest defaults to OS entropy plus a regression
//!   file).

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob import used by every proptest test module.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a proptest body; on failure returns a
/// [`test_runner::TestCaseError`] instead of panicking (so the harness can
/// report the sampled inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}: `{:?}` != `{:?}`",
            ::std::format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples its arguments `config.cases` times and
/// runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            [$crate::test_runner::ProptestConfig::default()] $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            let run_case = $crate::strategy::typed_runner(&strategy, |($($arg,)+)| {
                $body
                #[allow(unreachable_code)]
                ::core::result::Result::Ok(())
            });
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                let mut values = $crate::strategy::Strategy::sample_value(&strategy, &mut rng);
                match run_case(values.clone()) {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(message),
                    ) => {
                        // Greedy shrink: adopt the first candidate that
                        // still fails, restart from it, stop at a fixpoint.
                        let mut message = message;
                        let mut shrink_steps = 0u32;
                        'shrinking: while shrink_steps < 10_000 {
                            let candidates =
                                $crate::strategy::Strategy::shrink(&strategy, &values);
                            for cand in candidates {
                                if let ::core::result::Result::Err(
                                    $crate::test_runner::TestCaseError::Fail(m),
                                ) = run_case(cand.clone())
                                {
                                    values = cand;
                                    message = m;
                                    shrink_steps += 1;
                                    continue 'shrinking;
                                }
                            }
                            break;
                        }
                        let ($($arg,)+) = values;
                        ::std::panic!(
                            ::std::concat!(
                                "proptest case {}/{} failed: {}\n  inputs (after {} shrinks):",
                                $("\n    ", stringify!($arg), " = {:?}",)+
                            ),
                            case,
                            config.cases,
                            message,
                            shrink_steps,
                            $($arg,)+
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests!{ [$cfg] $($rest)* }
    };
}
