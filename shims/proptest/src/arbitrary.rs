//! The [`any`] entry point: full-range uniform strategies per type.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one uniform value over the type's whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random::<f64>()
    }
}

/// Strategy for any [`Arbitrary`] type; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
