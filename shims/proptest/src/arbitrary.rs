//! The [`any`] entry point: full-range uniform strategies per type.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::{shrink_toward, Strategy};

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one uniform value over the type's whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;

    /// Proposes simpler candidates for a failing value (integers toward
    /// zero); the default proposes nothing.
    fn shrink(value: &Self) -> Vec<Self> {
        let _ = value;
        Vec::new()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random::<$t>()
            }
            fn shrink(value: &Self) -> Vec<Self> {
                shrink_toward!(*value, 0)
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random::<$t>()
            }
            fn shrink(value: &Self) -> Vec<Self> {
                let v = *value;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    let mid = v / 2;
                    if mid != 0 && mid != v {
                        out.push(mid);
                    }
                    let step = if v > 0 { v - 1 } else { v + 1 };
                    if step != 0 && step != mid {
                        out.push(step);
                    }
                }
                out
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random::<bool>()
    }

    fn shrink(value: &Self) -> Vec<Self> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random::<f64>()
    }
}

/// Strategy for any [`Arbitrary`] type; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink(value)
    }
}

/// Returns the canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
