//! Configuration and failure plumbing for the [`proptest!`](crate::proptest)
//! macro.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How a single sampled case can fail.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// A `prop_assert!` (or explicit `Err`) fired: the property is false.
    Fail(String),
    /// The inputs were rejected (e.g. a precondition failed); the case is
    /// skipped, not counted as a failure.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Outcome of one sampled case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases sampled per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Builds the deterministic RNG for case `case` of test `name`: a fixed
/// base seed mixed with an FNV-1a hash of the test name and the case
/// index, so every test/case pair reproduces the same inputs on every run
/// and machine.
pub fn case_rng(name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= case as u64;
    h = h.wrapping_mul(0x0000_0100_0000_01B3);
    StdRng::seed_from_u64(h)
}
