//! Sampling from fixed collections.

use std::ops::RangeInclusive;

use rand::rngs::StdRng;
use rand::seq::IteratorRandom;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy for order-preserving subsequences; see [`subsequence`].
pub struct Subsequence<T> {
    values: Vec<T>,
    size: RangeInclusive<usize>,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn sample_value(&self, rng: &mut StdRng) -> Vec<T> {
        let len = rng.random_range(self.size.clone()).min(self.values.len());
        let mut indices = (0..self.values.len()).choose_multiple(rng, len);
        indices.sort_unstable();
        indices
            .into_iter()
            .map(|i| self.values[i].clone())
            .collect()
    }

    fn shrink(&self, value: &Vec<T>) -> Vec<Vec<T>> {
        let min = *self.size.start();
        let mut out = Vec::new();
        if value.len() > min {
            // Truncate to the minimum length, then drop single elements.
            out.push(value[..min].to_vec());
            for i in (0..value.len().saturating_sub(1)).rev() {
                let mut shorter = value.to_vec();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        out
    }
}

/// Generates subsequences of `values` (order preserved) whose length is
/// uniform in `size`.
///
/// # Panics
///
/// Panics if the smallest requested length exceeds `values.len()`.
pub fn subsequence<T: Clone>(values: Vec<T>, size: RangeInclusive<usize>) -> Subsequence<T> {
    assert!(
        *size.start() <= values.len(),
        "cannot draw {} items from {}",
        size.start(),
        values.len()
    );
    Subsequence { values, size }
}
