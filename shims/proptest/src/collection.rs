//! Collection strategies.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy for `Vec<T>` with a random length; see [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.sample_value(rng)).collect()
    }
}

/// Generates vectors whose length is uniform in `size` and whose elements
/// come from `element`.
///
/// (Named `vec` for API compatibility with real proptest, even though the
/// name collides with the `vec!` macro in rustdoc links.)
#[allow(clippy::module_name_repetitions)]
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
