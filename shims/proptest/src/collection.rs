//! Collection strategies.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy for `Vec<T>` with a random length; see [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.sample_value(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.size.start;
        let mut out = Vec::new();
        // Length shrinks first (toward the minimum allowed length), most
        // aggressive first: truncate to min, halve, drop one element.
        if value.len() > min {
            out.push(value[..min].to_vec());
            let half = min.max(value.len() / 2);
            if half != min && half != value.len() {
                out.push(value[..half].to_vec());
            }
            for i in (0..value.len()).rev() {
                let mut shorter = value.clone();
                shorter.remove(i);
                if shorter.len() >= min && shorter.len() != min && shorter.len() != half {
                    out.push(shorter);
                }
            }
        }
        // Then element-wise shrinks at the current length.
        for (i, element) in value.iter().enumerate() {
            for cand in self.element.shrink(element) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

/// Generates vectors whose length is uniform in `size` and whose elements
/// come from `element`.
///
/// (Named `vec` for API compatibility with real proptest, even though the
/// name collides with the `vec!` macro in rustdoc links.)
#[allow(clippy::module_name_repetitions)]
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
