//! Value-generation strategies.
//!
//! A [`Strategy`] here is simply a deterministic sampler: given the case's
//! RNG it produces one value. (Real proptest strategies also carry a shrink
//! tree; this shim never shrinks.)

use rand::rngs::StdRng;
use rand::Rng;

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample_value(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
