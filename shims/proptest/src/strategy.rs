//! Value-generation strategies.
//!
//! A [`Strategy`] here is a deterministic sampler plus a minimal shrinker:
//! given the case's RNG it produces one value, and given a failing value it
//! proposes a short list of strictly "smaller" candidates (real proptest
//! carries a full shrink tree; this shim does greedy candidate descent).

use rand::rngs::StdRng;
use rand::Rng;

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes simpler candidates for a failing `value`, most aggressive
    /// first (integers toward the range start, collections toward empty).
    ///
    /// The default is no candidates, which disables shrinking for the
    /// strategy; [`Map`] in particular cannot shrink because the mapping is
    /// not invertible.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Pins a case-runner closure's parameter type to `S::Value` so the
/// `proptest!` macro's tuple-destructuring closure type-checks against the
/// concrete sampled types (an implementation detail of the macro).
#[doc(hidden)]
pub fn typed_runner<S, F>(_strategy: &S, run: F) -> F
where
    S: Strategy,
    F: Fn(S::Value) -> crate::test_runner::TestCaseResult,
{
    run
}

/// Strategy returned by [`Strategy::prop_map`].
///
/// `Map` never shrinks: the inner value that produced a failing output is
/// not recoverable through an arbitrary closure.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Candidates between `start` and a failing unsigned value: the range
/// start, the midpoint, and the predecessor, deduplicated and ordered most
/// aggressive first.
macro_rules! shrink_toward {
    ($v:expr, $start:expr) => {{
        let v = $v;
        let start = $start;
        let mut out = Vec::new();
        if v > start {
            out.push(start);
            let mid = start + (v - start) / 2;
            if mid != start && mid != v {
                out.push(mid);
            }
            let prev = v - 1;
            if prev != start && prev != mid {
                out.push(prev);
            }
        }
        out
    }};
}
pub(crate) use shrink_toward;

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward!(*value, self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward!(*value, *self.start())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample_value(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *value > self.start {
            out.push(self.start);
            let mid = self.start + (*value - self.start) / 2.0;
            if mid != self.start && mid != *value {
                out.push(mid);
            }
        }
        out
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample_value(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let start = *self.start();
        let mut out = Vec::new();
        if *value > start {
            out.push(start);
            let mid = start + (*value - start) / 2.0;
            if mid != start && mid != *value {
                out.push(mid);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);
            fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut tuple = value.clone();
                        tuple.$idx = cand;
                        out.push(tuple);
                    }
                )+
                out
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
