//! The fixed worker-pool executor: a shared run queue of tasks, each a
//! boxed future re-enqueued by its waker.

use std::any::Any;
use std::collections::VecDeque;
use std::future::Future;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Task lifecycle states. A task is on the run queue iff its state is
/// `SCHEDULED`; `wake` transitions `IDLE → SCHEDULED` (enqueue) or
/// `RUNNING → RESCHEDULED` (the polling worker re-enqueues afterwards),
/// so a task is never queued — and therefore never polled — twice
/// concurrently.
const IDLE: u8 = 0;
const SCHEDULED: u8 = 1;
const RUNNING: u8 = 2;
const RESCHEDULED: u8 = 3;
const DONE: u8 = 4;

struct Queue {
    tasks: VecDeque<Arc<Task>>,
    shutdown: bool,
}

struct Pool {
    queue: Mutex<Queue>,
    available: Condvar,
}

impl Pool {
    fn enqueue(&self, task: Arc<Task>) {
        let mut q = self.queue.lock().unwrap();
        if q.shutdown {
            return;
        }
        q.tasks.push_back(task);
        drop(q);
        self.available.notify_one();
    }
}

struct Task {
    state: AtomicU8,
    future: Mutex<Option<BoxFuture>>,
    pool: Arc<Pool>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        loop {
            match self.state.load(Ordering::Acquire) {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, SCHEDULED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.pool.enqueue(self.clone());
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(RUNNING, RESCHEDULED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued, already marked for re-queue, or finished:
                // nothing to do.
                _ => return,
            }
        }
    }
}

impl Task {
    fn run(self: Arc<Self>) {
        self.state.store(RUNNING, Ordering::Release);
        let waker = Waker::from(self.clone());
        let mut cx = Context::from_waker(&waker);
        let mut slot = self.future.lock().unwrap();
        let Some(fut) = slot.as_mut() else {
            self.state.store(DONE, Ordering::Release);
            return;
        };
        // The spawn wrapper routes panics into the `JoinHandle`; this
        // outer catch only protects the worker thread from a panic in a
        // waker or drop impl.
        let polled = catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
        match polled {
            Ok(Poll::Pending) => {
                drop(slot);
                // RUNNING → IDLE, unless a wake arrived mid-poll
                // (RESCHEDULED): then this worker re-enqueues.
                if self
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    self.state.store(SCHEDULED, Ordering::Release);
                    self.pool.enqueue(self.clone());
                }
            }
            Ok(Poll::Ready(())) | Err(_) => {
                *slot = None;
                drop(slot);
                self.state.store(DONE, Ordering::Release);
            }
        }
    }
}

fn worker_loop(pool: Arc<Pool>) {
    loop {
        let task = {
            let mut q = pool.queue.lock().unwrap();
            loop {
                if let Some(task) = q.tasks.pop_front() {
                    break task;
                }
                if q.shutdown {
                    return;
                }
                q = pool.available.wait(q).unwrap();
            }
        };
        task.run();
    }
}

/// Where a finished task leaves its output for the [`JoinHandle`].
struct JoinState<T> {
    result: Option<Result<T, Box<dyn Any + Send>>>,
    waker: Option<Waker>,
}

/// Awaits the output of a task spawned with [`Executor::spawn`].
///
/// Dropping the handle detaches the task (it keeps running). If the task
/// panicked, awaiting the handle resumes the panic on the awaiting
/// thread.
pub struct JoinHandle<T> {
    state: Arc<Mutex<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Whether the task has finished (successfully or by panicking).
    pub fn is_finished(&self) -> bool {
        self.state.lock().unwrap().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut state = self.state.lock().unwrap();
        match state.result.take() {
            Some(Ok(value)) => Poll::Ready(value),
            Some(Err(panic)) => resume_unwind(panic),
            None => {
                state.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Catches a panic unwinding out of the wrapped future's `poll`, so the
/// spawn wrapper can forward it to the [`JoinHandle`].
struct CatchUnwind<F>(F);

impl<F: Future> Future for CatchUnwind<F> {
    type Output = Result<F::Output, Box<dyn Any + Send>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: structural pinning of the only field; it is never moved.
        let inner = unsafe { self.map_unchecked_mut(|s| &mut s.0) };
        match catch_unwind(AssertUnwindSafe(|| inner.poll(cx))) {
            Ok(Poll::Pending) => Poll::Pending,
            Ok(Poll::Ready(value)) => Poll::Ready(Ok(value)),
            Err(panic) => Poll::Ready(Err(panic)),
        }
    }
}

/// A fixed pool of worker threads multiplexing spawned tasks.
///
/// Dropping the executor shuts the pool down: workers finish the task
/// they are currently polling, remaining queued tasks are dropped
/// (cancelling their futures), and the worker threads are joined.
pub struct Executor {
    pool: Arc<Pool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// Spawns a pool of exactly `workers` OS threads (`0` is treated
    /// as 1).
    pub fn new(workers: usize) -> Self {
        let pool = Arc::new(Pool {
            queue: Mutex::new(Queue {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || worker_loop(pool))
            })
            .collect();
        Executor { pool, workers }
    }

    /// The number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Schedules `future` as a task on the pool and returns a handle to
    /// its output.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let state = Arc::new(Mutex::new(JoinState {
            result: None,
            waker: None,
        }));
        let handle_state = Arc::clone(&state);
        let wrapped = async move {
            let result = CatchUnwind(future).await;
            let waker = {
                let mut state = state.lock().unwrap();
                state.result = Some(result);
                state.waker.take()
            };
            if let Some(waker) = waker {
                waker.wake();
            }
        };
        let task = Arc::new(Task {
            state: AtomicU8::new(SCHEDULED),
            future: Mutex::new(Some(Box::pin(wrapped))),
            pool: Arc::clone(&self.pool),
        });
        self.pool.enqueue(task);
        JoinHandle {
            state: handle_state,
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut q = self.pool.queue.lock().unwrap();
            q.shutdown = true;
            q.tasks.clear();
        }
        self.pool.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Wakes the blocked [`block_on`] thread.
struct ThreadWaker(std::thread::Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives `future` to completion on the **calling** thread, parking it
/// between polls. Spawned tasks keep running on the pool's workers while
/// the caller is parked — this is how a service's driver loop waits on
/// mailboxes without occupying a worker.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => std::thread::park(),
        }
    }
}

/// Future of [`yield_now`].
#[derive(Debug, Default)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Cooperatively yields: reschedules the current task to the back of the
/// run queue once.
pub fn yield_now() -> YieldNow {
    YieldNow::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn block_on_returns_the_value() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn spawned_tasks_run_on_the_pool_and_join() {
        let pool = Executor::new(3);
        let handles: Vec<_> = (0..64u64)
            .map(|i| pool.spawn(async move { i * i }))
            .collect();
        let total: u64 = handles.into_iter().map(block_on).sum();
        assert_eq!(total, (0..64u64).map(|i| i * i).sum());
    }

    #[test]
    fn tasks_far_outnumber_workers() {
        let pool = Executor::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..1000)
            .map(|_| {
                let counter = Arc::clone(&counter);
                pool.spawn(async move {
                    yield_now().await;
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            block_on(h);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn panics_propagate_through_the_join_handle() {
        let pool = Executor::new(1);
        let ok = pool.spawn(async { "fine" });
        let bad = pool.spawn(async { panic!("task exploded") });
        assert_eq!(block_on(ok), "fine");
        let caught = catch_unwind(AssertUnwindSafe(|| block_on(bad)));
        assert!(caught.is_err(), "the panic must resurface at the join");
        // The worker survived the panic and keeps serving tasks.
        assert_eq!(block_on(pool.spawn(async { 7 })), 7);
    }

    #[test]
    fn dropping_the_executor_cancels_queued_tasks() {
        let pool = Executor::new(1);
        // A task that re-wakes itself forever would never finish; dropping
        // the executor must still return (the future is dropped).
        struct Forever;
        impl Future for Forever {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
        for _ in 0..8 {
            let _detached = pool.spawn(Forever);
        }
        drop(pool); // must not hang
    }

    #[test]
    fn wake_during_poll_reschedules_exactly_once() {
        // A future that wakes itself mid-poll and completes on the second
        // poll: exercises the RUNNING → RESCHEDULED transition.
        struct SelfWake(u8);
        impl Future for SelfWake {
            type Output = u8;
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u8> {
                self.0 += 1;
                if self.0 >= 2 {
                    Poll::Ready(self.0)
                } else {
                    cx.waker().wake_by_ref();
                    cx.waker().wake_by_ref(); // double wake: one reschedule
                    Poll::Pending
                }
            }
        }
        let pool = Executor::new(2);
        assert_eq!(block_on(pool.spawn(SelfWake(0))), 2);
    }
}
