//! Bounded async MPSC mailbox: `send` waits while full (backpressure),
//! `recv` waits while empty, `recv_batch` drains everything queued in one
//! wakeup — the per-round batching primitive.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

struct Inner<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
    recv_waker: Option<Waker>,
    send_wakers: VecDeque<Waker>,
}

impl<T> Inner<T> {
    fn wake_receiver(&mut self) -> Option<Waker> {
        self.recv_waker.take()
    }

    fn wake_one_sender(&mut self) -> Option<Waker> {
        self.send_wakers.pop_front()
    }
}

/// Error from [`MailboxSender::send`]: the receiver was dropped; the
/// unsent value is returned.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("mailbox receiver dropped")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error from [`MailboxSender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The mailbox is at capacity; the value is returned.
    Full(T),
    /// The receiver was dropped; the value is returned.
    Closed(T),
}

/// The sending half of a [`mailbox`]. Cloneable; the mailbox closes for
/// the receiver once every sender is dropped.
pub struct MailboxSender<T> {
    inner: Arc<Mutex<Inner<T>>>,
}

impl<T> Clone for MailboxSender<T> {
    fn clone(&self) -> Self {
        self.inner.lock().unwrap().senders += 1;
        MailboxSender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for MailboxSender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut inner = self.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                inner.wake_receiver()
            } else {
                None
            }
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

impl<T> MailboxSender<T> {
    /// Sends `value`, waiting while the mailbox is full. Resolves to
    /// `Err(SendError)` if the receiver is dropped.
    pub fn send(&self, value: T) -> SendFuture<'_, T> {
        SendFuture {
            sender: self,
            value: Some(value),
        }
    }

    /// Non-blocking send: fails immediately when full or closed.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let waker = {
            let mut inner = self.inner.lock().unwrap();
            if !inner.receiver_alive {
                return Err(TrySendError::Closed(value));
            }
            if inner.queue.len() >= inner.capacity {
                return Err(TrySendError::Full(value));
            }
            inner.queue.push_back(value);
            inner.wake_receiver()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
        Ok(())
    }
}

/// Future of [`MailboxSender::send`].
pub struct SendFuture<'a, T> {
    sender: &'a MailboxSender<T>,
    value: Option<T>,
}

impl<T> Unpin for SendFuture<'_, T> {}

impl<T> Future for SendFuture<'_, T> {
    type Output = Result<(), SendError<T>>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let value = self
            .value
            .take()
            .expect("SendFuture polled after completion");
        let waker = {
            let mut inner = self.sender.inner.lock().unwrap();
            if !inner.receiver_alive {
                return Poll::Ready(Err(SendError(value)));
            }
            if inner.queue.len() >= inner.capacity {
                self.value = Some(value);
                inner.send_wakers.push_back(cx.waker().clone());
                return Poll::Pending;
            }
            inner.queue.push_back(value);
            inner.wake_receiver()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
        Poll::Ready(Ok(()))
    }
}

/// The receiving half of a [`mailbox`] (single consumer).
pub struct Mailbox<T> {
    inner: Arc<Mutex<Inner<T>>>,
}

impl<T> Drop for Mailbox<T> {
    fn drop(&mut self) {
        let wakers = {
            let mut inner = self.inner.lock().unwrap();
            inner.receiver_alive = false;
            inner.queue.clear();
            std::mem::take(&mut inner.send_wakers)
        };
        for waker in wakers {
            waker.wake();
        }
    }
}

impl<T> Mailbox<T> {
    /// Receives one value, waiting while the mailbox is empty. Resolves
    /// to `None` once every sender is dropped and the queue is drained.
    pub fn recv(&mut self) -> RecvFuture<'_, T> {
        RecvFuture { mailbox: self }
    }

    /// Drains **everything** currently queued in one wakeup, waiting only
    /// if the mailbox is empty. Resolves to an empty `Vec` once every
    /// sender is dropped and the queue is drained.
    pub fn recv_batch(&mut self) -> RecvBatch<'_, T> {
        RecvBatch { mailbox: self }
    }

    /// Non-blocking receive of one value, if any is queued.
    pub fn try_recv(&mut self) -> Option<T> {
        let (value, waker) = {
            let mut inner = self.inner.lock().unwrap();
            let value = inner.queue.pop_front();
            let waker = if value.is_some() {
                inner.wake_one_sender()
            } else {
                None
            };
            (value, waker)
        };
        if let Some(waker) = waker {
            waker.wake();
        }
        value
    }
}

/// Future of [`Mailbox::recv`].
pub struct RecvFuture<'a, T> {
    mailbox: &'a mut Mailbox<T>,
}

impl<T> Unpin for RecvFuture<'_, T> {}

impl<T> Future for RecvFuture<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let (out, waker) = {
            let mut inner = self.mailbox.inner.lock().unwrap();
            match inner.queue.pop_front() {
                Some(value) => {
                    let waker = inner.wake_one_sender();
                    (Poll::Ready(Some(value)), waker)
                }
                None if inner.senders == 0 => (Poll::Ready(None), None),
                None => {
                    inner.recv_waker = Some(cx.waker().clone());
                    (Poll::Pending, None)
                }
            }
        };
        if let Some(waker) = waker {
            waker.wake();
        }
        out
    }
}

/// Future of [`Mailbox::recv_batch`].
pub struct RecvBatch<'a, T> {
    mailbox: &'a mut Mailbox<T>,
}

impl<T> Unpin for RecvBatch<'_, T> {}

impl<T> Future for RecvBatch<'_, T> {
    type Output = Vec<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let (out, wakers) = {
            let mut inner = self.mailbox.inner.lock().unwrap();
            if inner.queue.is_empty() {
                if inner.senders == 0 {
                    (Poll::Ready(Vec::new()), VecDeque::new())
                } else {
                    inner.recv_waker = Some(cx.waker().clone());
                    (Poll::Pending, VecDeque::new())
                }
            } else {
                let batch = inner.queue.drain(..).collect();
                // The whole queue emptied: every waiting sender now has
                // room, so wake them all.
                let wakers = std::mem::take(&mut inner.send_wakers);
                (Poll::Ready(batch), wakers)
            }
        };
        for waker in wakers {
            waker.wake();
        }
        out
    }
}

/// Creates a bounded mailbox holding at most `capacity` values (`0` is
/// treated as 1).
pub fn mailbox<T>(capacity: usize) -> (MailboxSender<T>, Mailbox<T>) {
    let inner = Arc::new(Mutex::new(Inner {
        queue: VecDeque::new(),
        capacity: capacity.max(1),
        senders: 1,
        receiver_alive: true,
        recv_waker: None,
        send_wakers: VecDeque::new(),
    }));
    (
        MailboxSender {
            inner: Arc::clone(&inner),
        },
        Mailbox { inner },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{block_on, Executor};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn values_arrive_in_order_and_close_on_sender_drop() {
        let (tx, mut rx) = mailbox::<u32>(4);
        let pool = Executor::new(1);
        let feeder = pool.spawn(async move {
            for i in 0..10 {
                tx.send(i).await.unwrap();
            }
        });
        let got = block_on(async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        block_on(feeder);
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_blocks_at_capacity_until_the_receiver_drains() {
        let (tx, mut rx) = mailbox::<u32>(2);
        let pool = Executor::new(1);
        let sent = Arc::new(AtomicUsize::new(0));
        let sent2 = Arc::clone(&sent);
        let feeder = pool.spawn(async move {
            for i in 0..6 {
                tx.send(i).await.unwrap();
                sent2.fetch_add(1, Ordering::SeqCst);
            }
        });
        // Give the feeder time to hit the capacity wall.
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            sent.load(Ordering::SeqCst) <= 3,
            "backpressure must stall the feeder at capacity"
        );
        let total: u32 = block_on(async move {
            let mut total = 0;
            while let Some(v) = rx.recv().await {
                total += v;
            }
            total
        });
        block_on(feeder);
        assert_eq!(total, (0..6).sum());
    }

    #[test]
    fn recv_batch_drains_everything_queued() {
        let (tx, mut rx) = mailbox::<u32>(8);
        for i in 0..5 {
            tx.try_send(i).unwrap();
        }
        let batch = block_on(rx.recv_batch());
        assert_eq!(batch, vec![0, 1, 2, 3, 4]);
        drop(tx);
        assert!(block_on(rx.recv_batch()).is_empty());
    }

    #[test]
    fn try_send_reports_full_and_closed() {
        let (tx, rx) = mailbox::<u32>(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Closed(3)));
    }

    #[test]
    fn send_fails_once_the_receiver_is_dropped() {
        let (tx, rx) = mailbox::<u32>(1);
        drop(rx);
        assert_eq!(block_on(tx.send(9)), Err(SendError(9)));
    }

    #[test]
    fn many_senders_one_receiver() {
        let (tx, mut rx) = mailbox::<u64>(4);
        let pool = Executor::new(4);
        let handles: Vec<_> = (0..8u64)
            .map(|s| {
                let tx = tx.clone();
                pool.spawn(async move {
                    for i in 0..100u64 {
                        tx.send(s * 1000 + i).await.unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let count = block_on(async move {
            let mut count = 0u64;
            loop {
                let batch = rx.recv_batch().await;
                if batch.is_empty() {
                    break;
                }
                count += batch.len() as u64;
            }
            count
        });
        for h in handles {
            block_on(h);
        }
        assert_eq!(count, 800);
    }
}
