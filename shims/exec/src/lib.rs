//! Vendored mini async runtime for the EBA workspace.
//!
//! The build environment has no registry access, so — in the spirit of the
//! `crossbeam-channel` shim — this workspace-local crate provides the
//! minimal executor/reactor surface the consensus service (`eba-service`)
//! multiplexes sessions on. Three pieces, all over `std` only:
//!
//! * [`Executor`] — a **fixed worker pool**: `new(workers)` spawns exactly
//!   that many OS threads, [`Executor::spawn`] schedules a future as a
//!   task on the shared run queue, wakers re-enqueue their task, and
//!   [`JoinHandle`] awaits (or, via [`block_on`], blocks on) the result.
//!   Thousands of tasks multiplex over the pool; a task only occupies a
//!   worker while it is actually being polled.
//! * [`sleep`] / [`timeout`] — a lazily started **timer reactor** thread
//!   holding a deadline heap; expired deadlines wake their registered
//!   waker, so timed futures cost no worker while waiting.
//! * [`mailbox`] — a **bounded async MPSC mailbox**:
//!   [`MailboxSender::send`] waits (backpressure) while the mailbox is
//!   full, [`Mailbox::recv`] waits while it is empty, and
//!   [`Mailbox::recv_batch`] drains everything queued in one wakeup —
//!   the batching primitive the service's per-round routers are built on.
//!
//! ```
//! use exec::{block_on, mailbox, Executor};
//!
//! let pool = Executor::new(2);
//! let (tx, mut rx) = mailbox::<u32>(8);
//! let feeder = pool.spawn(async move {
//!     for i in 0..4 {
//!         tx.send(i).await.unwrap();
//!     }
//! });
//! let sum = block_on(async move {
//!     let mut sum = 0;
//!     while let Some(i) = rx.recv().await {
//!         sum += i;
//!     }
//!     sum
//! });
//! block_on(feeder);
//! assert_eq!(sum, 6);
//! ```

mod executor;
mod mailbox;
mod timer;

pub use executor::{block_on, yield_now, Executor, JoinHandle, YieldNow};
pub use mailbox::{
    mailbox, Mailbox, MailboxSender, RecvBatch, RecvFuture, SendError, SendFuture, TrySendError,
};
pub use timer::{sleep, sleep_until, timeout, Elapsed, Sleep, Timeout};
