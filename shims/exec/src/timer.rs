//! The timer reactor: one lazily started thread holding a deadline heap;
//! expired deadlines wake their registered waker.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::future::Future;
use std::pin::Pin;
use std::sync::{Condvar, Mutex, OnceLock};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

struct ReactorState {
    /// Min-heap of (deadline, timer id). Cancelled entries are detected
    /// lazily: an id absent from `wakers` is skipped when it surfaces.
    heap: BinaryHeap<Reverse<(Instant, u64)>>,
    wakers: HashMap<u64, Waker>,
    next_id: u64,
}

struct Reactor {
    state: Mutex<ReactorState>,
    changed: Condvar,
}

impl Reactor {
    fn global() -> &'static Reactor {
        static REACTOR: OnceLock<&'static Reactor> = OnceLock::new();
        REACTOR.get_or_init(|| {
            let reactor: &'static Reactor = Box::leak(Box::new(Reactor {
                state: Mutex::new(ReactorState {
                    heap: BinaryHeap::new(),
                    wakers: HashMap::new(),
                    next_id: 0,
                }),
                changed: Condvar::new(),
            }));
            std::thread::Builder::new()
                .name("exec-timer".into())
                .spawn(move || reactor.run())
                .expect("spawning the timer reactor thread");
            reactor
        })
    }

    fn run(&self) {
        let mut state = self.state.lock().unwrap();
        loop {
            let now = Instant::now();
            // Fire everything due, collecting wakers to invoke outside
            // the lock.
            let mut due = Vec::new();
            while let Some(&Reverse((deadline, id))) = state.heap.peek() {
                if deadline > now {
                    break;
                }
                state.heap.pop();
                if let Some(waker) = state.wakers.remove(&id) {
                    due.push(waker);
                }
            }
            if !due.is_empty() {
                drop(state);
                for waker in due {
                    waker.wake();
                }
                state = self.state.lock().unwrap();
                continue;
            }
            state = match state.heap.peek() {
                Some(&Reverse((deadline, _))) => {
                    let wait = deadline.saturating_duration_since(now);
                    self.changed.wait_timeout(state, wait).unwrap().0
                }
                None => self.changed.wait(state).unwrap(),
            };
        }
    }

    fn register(&self, deadline: Instant, waker: Waker) -> u64 {
        let mut state = self.state.lock().unwrap();
        let id = state.next_id;
        state.next_id += 1;
        state.heap.push(Reverse((deadline, id)));
        state.wakers.insert(id, waker);
        drop(state);
        self.changed.notify_one();
        id
    }

    fn update_waker(&self, id: u64, waker: &Waker) {
        let mut state = self.state.lock().unwrap();
        if let Some(slot) = state.wakers.get_mut(&id) {
            slot.clone_from(waker);
        }
    }

    fn cancel(&self, id: u64) {
        // The heap entry is left in place and skipped when it surfaces.
        self.state.lock().unwrap().wakers.remove(&id);
    }
}

/// Future of [`sleep`] / [`sleep_until`]: resolves once its deadline has
/// passed. Dropping it cancels the timer.
#[derive(Debug)]
pub struct Sleep {
    deadline: Instant,
    id: Option<u64>,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            if let Some(id) = self.id.take() {
                Reactor::global().cancel(id);
            }
            return Poll::Ready(());
        }
        match self.id {
            Some(id) => Reactor::global().update_waker(id, cx.waker()),
            None => {
                self.id = Some(Reactor::global().register(self.deadline, cx.waker().clone()));
            }
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(id) = self.id.take() {
            Reactor::global().cancel(id);
        }
    }
}

/// Resolves after `duration` has elapsed.
pub fn sleep(duration: Duration) -> Sleep {
    sleep_until(Instant::now() + duration)
}

/// Resolves once `deadline` has passed.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline, id: None }
}

/// Error returned by [`timeout`] when the deadline fires before the inner
/// future completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed;

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("deadline elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Future of [`timeout`]: the inner future's output, or [`Elapsed`].
#[derive(Debug)]
pub struct Timeout<F> {
    future: F,
    sleep: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: structural pinning of both fields; neither is moved.
        let this = unsafe { self.get_unchecked_mut() };
        let future = unsafe { Pin::new_unchecked(&mut this.future) };
        if let Poll::Ready(value) = future.poll(cx) {
            return Poll::Ready(Ok(value));
        }
        match Pin::new(&mut this.sleep).poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Runs `future` against a deadline `duration` from now; yields
/// `Err(Elapsed)` if the deadline fires first.
pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
    Timeout {
        future,
        sleep: sleep(duration),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{block_on, Executor};

    #[test]
    fn sleep_waits_at_least_the_duration() {
        let start = Instant::now();
        block_on(sleep(Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn timers_fire_in_deadline_order_across_tasks() {
        let pool = Executor::new(2);
        let t0 = Instant::now();
        let slow = pool.spawn(async move {
            sleep(Duration::from_millis(40)).await;
            t0.elapsed()
        });
        let fast = pool.spawn(async move {
            sleep(Duration::from_millis(5)).await;
            t0.elapsed()
        });
        let (slow, fast) = (block_on(slow), block_on(fast));
        assert!(fast < slow, "fast={fast:?} slow={slow:?}");
    }

    #[test]
    fn timeout_passes_through_a_prompt_future() {
        let value = block_on(timeout(Duration::from_millis(100), async { 5 }));
        assert_eq!(value, Ok(5));
    }

    #[test]
    fn timeout_fires_on_a_stuck_future() {
        let result = block_on(timeout(
            Duration::from_millis(10),
            std::future::pending::<()>(),
        ));
        assert_eq!(result, Err(Elapsed));
    }
}
